// Package system composes a full simulated machine — cores, paging, the L3
// boundary, and one memory organization — runs a workload on it, and
// returns the measurements every experiment consumes.
package system

import (
	"fmt"

	"cameo/internal/cameo"
	"cameo/internal/memorg"
)

// OrgKind names a registered memory organization. The integer values are
// the memorg registry kinds; runner cell keys render them as decimals, so
// they are stable forever for the seed organizations.
type OrgKind int

const (
	// Baseline: 12 GB off-chip DRAM, no stacked DRAM.
	Baseline = OrgKind(memorg.KindBaseline)
	// Cache: stacked DRAM as an Alloy cache; capacity stays 12 GB.
	Cache = OrgKind(memorg.KindCache)
	// TLMStatic: stacked DRAM in the address space, random page placement.
	TLMStatic = OrgKind(memorg.KindTLMStatic)
	// TLMDynamic: TLM with page swap on every off-chip touch.
	TLMDynamic = OrgKind(memorg.KindTLMDynamic)
	// TLMFreq: TLM with epoch-based frequency-ranked page placement.
	TLMFreq = OrgKind(memorg.KindTLMFreq)
	// TLMOracle: TLM with profiled (oracular) initial placement.
	TLMOracle = OrgKind(memorg.KindTLMOracle)
	// CAMEO: the paper's proposal; LLT/Pred sub-options select the design.
	CAMEO = OrgKind(memorg.KindCAMEO)
	// DoubleUse: idealistic Alloy cache plus 16 GB of capacity.
	DoubleUse = OrgKind(memorg.KindDoubleUse)
	// LHCache: the Loh-Hill set-associative DRAM cache (the paper's
	// citation [10]), as a second hardware-cache baseline.
	LHCache = OrgKind(memorg.KindLHCache)
	// LHCacheMM: LH-Cache with an idealized MissMap (misses skip the probe).
	LHCacheMM = OrgKind(memorg.KindLHCacheMM)
	// MemCache: stacked DRAM statically partitioned part-memory/part-cache.
	MemCache = OrgKind(memorg.KindMemCache)
	// Gemini: hybrid direct/set-associative DRAM cache mapping.
	Gemini = OrgKind(memorg.KindGemini)
)

func (k OrgKind) String() string {
	if d, ok := memorg.ByKind(int(k)); ok {
		return d.Display
	}
	return fmt.Sprintf("OrgKind(%d)", int(k))
}

// ParseOrg maps a case-insensitive organization name (the CLI/API spelling,
// e.g. "tlm-dynamic") onto its kind via the memorg registry.
func ParseOrg(name string) (OrgKind, bool) {
	d, ok := memorg.ByName(name)
	if !ok {
		return 0, false
	}
	return OrgKind(d.Kind), true
}

// OrgNames returns every registered organization name, sorted — the single
// source for cmd usage text, -org error messages, and the CI org matrix.
func OrgNames() []string { return memorg.Names() }

// OrgDescriptor returns the registry entry behind a kind, for consumers
// that need the design summary or sweep dimensions.
func OrgDescriptor(k OrgKind) (memorg.Descriptor, bool) { return memorg.ByKind(int(k)) }

// SupportsSharding reports whether the organization can run in the
// group-sharded execution mode (its descriptor declares shardable state).
// Multi-organization front ends use it to apply a sweep-wide -shards knob
// only where it is meaningful; single-organization front ends instead let
// Validate reject the knob loudly.
func SupportsSharding(k OrgKind) bool {
	d, ok := memorg.ByKind(int(k))
	return ok && d.ShardableState != nil
}

// Full-scale capacities (Table I): 4 GB stacked, 12 GB off-chip.
const (
	StackedBytesFull = 4 << 30
	OffChipBytesFull = 12 << 30
	// TotalBytesFull is the combined capacity the ratio sweeps hold fixed.
	TotalBytesFull = StackedBytesFull + OffChipBytesFull
	// L3LookupCycles is charged ahead of every memory access (Table I's
	// 24-cycle shared L3 — the lookup that discovered the miss).
	L3LookupCycles = 24
)

// Config selects an organization and the simulation scale.
type Config struct {
	Org OrgKind
	// LLT/Pred configure CAMEO (ignored otherwise). Defaults: CoLocated+LLP,
	// the paper's final design.
	LLT  cameo.LLTKind
	Pred cameo.PredKind
	// ScaleDiv divides every capacity and footprint (DESIGN.md; default 1024).
	ScaleDiv uint64
	// Cores is the rate-mode copy count (paper: 32).
	Cores int
	// InstrPerCore is each core's instruction budget.
	InstrPerCore uint64
	// Seed drives workload generation and paging randomness.
	Seed uint64
	// EpochAccesses is TLM-Freq's epoch length in demand accesses.
	EpochAccesses uint64
	// UseL3 inserts a real (scaled) L3 model between the generated stream
	// and the organization. Off by default: the generators already emit the
	// post-L3 stream that Table II's MPKI describes.
	UseL3 bool
	// MigrationThreshold defers TLM-Dynamic migration until a page has been
	// touched this many times (0/1 = the paper's migrate-on-first-touch).
	MigrationThreshold int
	// LLTCacheEntries gives CAMEO's Embedded-LLT design an SRAM cache of
	// table entries (0 = the paper's design; power of two).
	LLTCacheEntries int
	// HotSwapThreshold enables CAMEO's Section VI-D extension: swap only
	// lines whose page has at least this many recent accesses (0 = paper's
	// always-swap policy).
	HotSwapThreshold uint32
	// WarmupInstr, when nonzero, is the per-core instruction count treated
	// as warm-up: once every core has retired it, all statistics reset and
	// the measured region begins (state — caches, LLT, page tables — stays
	// warm). Must be below InstrPerCore.
	WarmupInstr uint64
	// Refresh enables DRAM refresh modeling in both modules (off by
	// default, matching the paper's model).
	Refresh bool
	// WriteBuffered enables the DRAM controllers' write-queue model (reads
	// take priority; writes drain in idle time). Off by default, matching
	// the paper's simpler model; ext-controller measures the difference.
	WriteBuffered bool
	// FRFCFS replaces the analytic in-order DRAM model with the queued
	// FR-FCFS controller (package memctrl): row-hit-first scheduling with
	// read priority. Off by default; mutually exclusive with WriteBuffered
	// and Refresh (which are knobs of the analytic model).
	FRFCFS bool
	// UseTLB adds per-core TLBs whose page-walk penalty lands on demand
	// misses (off by default, matching the paper's model; identical across
	// organizations since CAMEO remaps below the physical address).
	UseTLB bool
	// StackedDivisor sets the stacked share of the fixed 16 GB total:
	// stacked = total/StackedDivisor (4 = Table I's quarter, 2 = the
	// half-capacity point the paper's introduction motivates). It is also
	// CAMEO's congruence-group associativity, so only 2..4 are encodable.
	StackedDivisor int
	// MemPartPct configures MemCache (ignored otherwise): the percent of
	// stacked capacity exposed as OS-visible memory, the rest running as a
	// direct-mapped cache. 0 means the design default of 50. Deliberately
	// NOT filled by WithDefaults: cell keys encode it only when set, so
	// every pre-existing cell key stays byte-identical.
	MemPartPct int
	// HybridWays configures Gemini (ignored otherwise): the associativity
	// of the set-associative victim region backing the direct-mapped
	// fast-path region. 0 means the design default of 4; must be a power
	// of two <= 16. Not filled by WithDefaults, like MemPartPct.
	HybridWays int
	// Shards, when nonzero, selects the group-sharded execution mode: the
	// organization's congruence-group state partitions into canonical
	// lanes driven by this many worker goroutines, behind a decoupled
	// front end (see internal/system/sharded.go and DESIGN.md
	// §Performance). Output is byte-identical at every Shards >= 1, so the
	// cell key encodes only the mode bit — never the worker count — and
	// all nonzero values share one cache entry. Requires an organization
	// whose descriptor declares ShardableState. Not filled by
	// WithDefaults, like MemPartPct: pre-existing cell keys stay
	// byte-identical when the knob is unset.
	Shards int
}

// WithDefaults fills zero fields with the paper-equivalent defaults.
func (c Config) WithDefaults() Config {
	if c.ScaleDiv == 0 {
		c.ScaleDiv = 1024
	}
	if c.Cores == 0 {
		c.Cores = 32
	}
	if c.InstrPerCore == 0 {
		c.InstrPerCore = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 0xCA3E0
	}
	if c.EpochAccesses == 0 {
		c.EpochAccesses = 200_000
	}
	if c.StackedDivisor == 0 {
		c.StackedDivisor = 4
	}
	// LLT and Pred need no defaulting: their zero values are the paper's
	// final design (Co-Located LLT with the LLP). MemPartPct and
	// HybridWays stay zero on purpose — the organizations apply their own
	// defaults, keeping pre-existing cell keys byte-stable.
	return c
}

// Validate reports a descriptive error for an unusable configuration,
// including organization-specific checks from the registry descriptor.
func (c Config) Validate() error {
	switch {
	case c.ScaleDiv == 0 || c.ScaleDiv&(c.ScaleDiv-1) != 0:
		return fmt.Errorf("system: ScaleDiv %d must be a power of two", c.ScaleDiv)
	case c.ScaleDiv > 1<<16:
		return fmt.Errorf("system: ScaleDiv %d leaves no memory to simulate", c.ScaleDiv)
	case c.Cores <= 0:
		return fmt.Errorf("system: non-positive core count")
	case c.InstrPerCore == 0:
		return fmt.Errorf("system: zero instruction budget")
	case c.StackedDivisor < 2 || c.StackedDivisor > 4:
		return fmt.Errorf("system: StackedDivisor %d out of [2,4]", c.StackedDivisor)
	case c.WarmupInstr >= c.InstrPerCore:
		return fmt.Errorf("system: warmup %d not below budget %d", c.WarmupInstr, c.InstrPerCore)
	case c.FRFCFS && (c.WriteBuffered || c.Refresh):
		return fmt.Errorf("system: FRFCFS excludes the analytic model's WriteBuffered/Refresh knobs")
	case c.Shards < 0:
		return fmt.Errorf("system: negative shard count %d", c.Shards)
	}
	d, ok := memorg.ByKind(int(c.Org))
	if !ok {
		return fmt.Errorf("system: unknown organization %v", c.Org)
	}
	if c.Shards > 0 && d.ShardableState == nil {
		return fmt.Errorf("system: organization %s does not declare group-shardable state (-shards needs it)", d.Name)
	}
	if d.Validate != nil {
		if err := d.Validate(c.buildEnv()); err != nil {
			return err
		}
	}
	return nil
}

// buildEnv lifts the configuration into the organization-neutral build
// environment; device factories and OS hooks are threaded in by buildOrg.
func (c Config) buildEnv() memorg.Env {
	return memorg.Env{
		Kind:               int(c.Org),
		Cores:              c.Cores,
		Seed:               c.Seed,
		StackedBytes:       c.StackedBytes(),
		OffChipBytes:       c.OffChipBytes(),
		StackedDivisor:     c.StackedDivisor,
		LLT:                int(c.LLT),
		Pred:               int(c.Pred),
		LLTCacheEntries:    c.LLTCacheEntries,
		HotSwapThreshold:   c.HotSwapThreshold,
		MigrationThreshold: c.MigrationThreshold,
		EpochAccesses:      c.EpochAccesses,
		MemPartPct:         c.MemPartPct,
		HybridWays:         c.HybridWays,
	}
}

// StackedBytes returns the scaled stacked-DRAM capacity.
func (c Config) StackedBytes() uint64 {
	return TotalBytesFull / uint64(c.StackedDivisor) / c.ScaleDiv
}

// OffChipBytes returns the scaled off-chip capacity.
func (c Config) OffChipBytes() uint64 {
	return (TotalBytesFull - TotalBytesFull/uint64(c.StackedDivisor)) / c.ScaleDiv
}
