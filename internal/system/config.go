// Package system composes a full simulated machine — cores, paging, the L3
// boundary, and one memory organization — runs a workload on it, and
// returns the measurements every experiment consumes.
package system

import (
	"fmt"
	"sort"
	"strings"

	"cameo/internal/cameo"
)

// OrgKind names the memory organizations of the paper's evaluation.
type OrgKind int

const (
	// Baseline: 12 GB off-chip DRAM, no stacked DRAM.
	Baseline OrgKind = iota
	// Cache: stacked DRAM as an Alloy cache; capacity stays 12 GB.
	Cache
	// TLMStatic: stacked DRAM in the address space, random page placement.
	TLMStatic
	// TLMDynamic: TLM with page swap on every off-chip touch.
	TLMDynamic
	// TLMFreq: TLM with epoch-based frequency-ranked page placement.
	TLMFreq
	// TLMOracle: TLM with profiled (oracular) initial placement.
	TLMOracle
	// CAMEO: the paper's proposal; LLT/Pred sub-options select the design.
	CAMEO
	// DoubleUse: idealistic Alloy cache plus 16 GB of capacity.
	DoubleUse
	// LHCache: the Loh-Hill set-associative DRAM cache (the paper's
	// citation [10]), as a second hardware-cache baseline.
	LHCache
	// LHCacheMM: LH-Cache with an idealized MissMap (misses skip the probe).
	LHCacheMM
)

func (k OrgKind) String() string {
	switch k {
	case Baseline:
		return "Baseline"
	case Cache:
		return "Cache"
	case TLMStatic:
		return "TLM-Static"
	case TLMDynamic:
		return "TLM-Dynamic"
	case TLMFreq:
		return "TLM-Freq"
	case TLMOracle:
		return "TLM-Oracle"
	case CAMEO:
		return "CAMEO"
	case DoubleUse:
		return "DoubleUse"
	case LHCache:
		return "LH-Cache"
	case LHCacheMM:
		return "LH-Cache+MissMap"
	}
	return fmt.Sprintf("OrgKind(%d)", int(k))
}

// orgNames maps the lower-case CLI/API spellings onto kinds — the single
// parse table shared by cameo-sim, cameo-sweep, and cameod.
var orgNames = map[string]OrgKind{
	"baseline":    Baseline,
	"cache":       Cache,
	"tlm-static":  TLMStatic,
	"tlm-dynamic": TLMDynamic,
	"tlm-freq":    TLMFreq,
	"tlm-oracle":  TLMOracle,
	"cameo":       CAMEO,
	"doubleuse":   DoubleUse,
	"lh-cache":    LHCache,
	"lh-missmap":  LHCacheMM,
}

// ParseOrg maps a case-insensitive organization name (the CLI/API spelling,
// e.g. "tlm-dynamic") onto its kind.
func ParseOrg(name string) (OrgKind, bool) {
	k, ok := orgNames[strings.ToLower(name)]
	return k, ok
}

// OrgNames returns every parseable organization name, sorted.
func OrgNames() []string {
	names := make([]string, 0, len(orgNames))
	for n := range orgNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Full-scale capacities (Table I): 4 GB stacked, 12 GB off-chip.
const (
	StackedBytesFull = 4 << 30
	OffChipBytesFull = 12 << 30
	// TotalBytesFull is the combined capacity the ratio sweeps hold fixed.
	TotalBytesFull = StackedBytesFull + OffChipBytesFull
	// L3LookupCycles is charged ahead of every memory access (Table I's
	// 24-cycle shared L3 — the lookup that discovered the miss).
	L3LookupCycles = 24
)

// Config selects an organization and the simulation scale.
type Config struct {
	Org OrgKind
	// LLT/Pred configure CAMEO (ignored otherwise). Defaults: CoLocated+LLP,
	// the paper's final design.
	LLT  cameo.LLTKind
	Pred cameo.PredKind
	// ScaleDiv divides every capacity and footprint (DESIGN.md; default 1024).
	ScaleDiv uint64
	// Cores is the rate-mode copy count (paper: 32).
	Cores int
	// InstrPerCore is each core's instruction budget.
	InstrPerCore uint64
	// Seed drives workload generation and paging randomness.
	Seed uint64
	// EpochAccesses is TLM-Freq's epoch length in demand accesses.
	EpochAccesses uint64
	// UseL3 inserts a real (scaled) L3 model between the generated stream
	// and the organization. Off by default: the generators already emit the
	// post-L3 stream that Table II's MPKI describes.
	UseL3 bool
	// MigrationThreshold defers TLM-Dynamic migration until a page has been
	// touched this many times (0/1 = the paper's migrate-on-first-touch).
	MigrationThreshold int
	// LLTCacheEntries gives CAMEO's Embedded-LLT design an SRAM cache of
	// table entries (0 = the paper's design; power of two).
	LLTCacheEntries int
	// HotSwapThreshold enables CAMEO's Section VI-D extension: swap only
	// lines whose page has at least this many recent accesses (0 = paper's
	// always-swap policy).
	HotSwapThreshold uint32
	// WarmupInstr, when nonzero, is the per-core instruction count treated
	// as warm-up: once every core has retired it, all statistics reset and
	// the measured region begins (state — caches, LLT, page tables — stays
	// warm). Must be below InstrPerCore.
	WarmupInstr uint64
	// Refresh enables DRAM refresh modeling in both modules (off by
	// default, matching the paper's model).
	Refresh bool
	// WriteBuffered enables the DRAM controllers' write-queue model (reads
	// take priority; writes drain in idle time). Off by default, matching
	// the paper's simpler model; ext-controller measures the difference.
	WriteBuffered bool
	// FRFCFS replaces the analytic in-order DRAM model with the queued
	// FR-FCFS controller (package memctrl): row-hit-first scheduling with
	// read priority. Off by default; mutually exclusive with WriteBuffered
	// and Refresh (which are knobs of the analytic model).
	FRFCFS bool
	// UseTLB adds per-core TLBs whose page-walk penalty lands on demand
	// misses (off by default, matching the paper's model; identical across
	// organizations since CAMEO remaps below the physical address).
	UseTLB bool
	// StackedDivisor sets the stacked share of the fixed 16 GB total:
	// stacked = total/StackedDivisor (4 = Table I's quarter, 2 = the
	// half-capacity point the paper's introduction motivates). It is also
	// CAMEO's congruence-group associativity, so only 2..4 are encodable.
	StackedDivisor int
}

// WithDefaults fills zero fields with the paper-equivalent defaults.
func (c Config) WithDefaults() Config {
	if c.ScaleDiv == 0 {
		c.ScaleDiv = 1024
	}
	if c.Cores == 0 {
		c.Cores = 32
	}
	if c.InstrPerCore == 0 {
		c.InstrPerCore = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 0xCA3E0
	}
	if c.EpochAccesses == 0 {
		c.EpochAccesses = 200_000
	}
	if c.StackedDivisor == 0 {
		c.StackedDivisor = 4
	}
	// LLT and Pred need no defaulting: their zero values are the paper's
	// final design (Co-Located LLT with the LLP).
	return c
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.ScaleDiv == 0 || c.ScaleDiv&(c.ScaleDiv-1) != 0:
		return fmt.Errorf("system: ScaleDiv %d must be a power of two", c.ScaleDiv)
	case c.ScaleDiv > 1<<16:
		return fmt.Errorf("system: ScaleDiv %d leaves no memory to simulate", c.ScaleDiv)
	case c.Cores <= 0:
		return fmt.Errorf("system: non-positive core count")
	case c.InstrPerCore == 0:
		return fmt.Errorf("system: zero instruction budget")
	case c.StackedDivisor < 2 || c.StackedDivisor > 4:
		return fmt.Errorf("system: StackedDivisor %d out of [2,4]", c.StackedDivisor)
	case c.WarmupInstr >= c.InstrPerCore:
		return fmt.Errorf("system: warmup %d not below budget %d", c.WarmupInstr, c.InstrPerCore)
	case c.FRFCFS && (c.WriteBuffered || c.Refresh):
		return fmt.Errorf("system: FRFCFS excludes the analytic model's WriteBuffered/Refresh knobs")
	}
	return nil
}

// StackedBytes returns the scaled stacked-DRAM capacity.
func (c Config) StackedBytes() uint64 {
	return TotalBytesFull / uint64(c.StackedDivisor) / c.ScaleDiv
}

// OffChipBytes returns the scaled off-chip capacity.
func (c Config) OffChipBytes() uint64 {
	return (TotalBytesFull - TotalBytesFull/uint64(c.StackedDivisor)) / c.ScaleDiv
}
