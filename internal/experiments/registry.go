package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"cameo/internal/runner"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the paper artifact id ("fig13", "table3", ...).
	ID string
	// Title describes what the paper shows.
	Title string
	// Plan declares the experiment's simulation grid up front so the
	// runner can fan it across the worker pool before rendering. Nil for
	// experiments that run no simulations (spec echoes, closed forms) or
	// that manage their own prewarming.
	Plan func(s *Suite) []runner.Job
	// Run regenerates it against the suite and writes the rows/series.
	// Render functions compute any cell Plan missed, so output never
	// depends on the prewarm step.
	Run func(s *Suite, w io.Writer)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Baseline system configuration", nil, Table1},
		{"table2", "Workload characteristics (32 copies, rate mode)", nil, Table2},
		{"fig2", "Motivation: Cache vs TLM vs DoubleUse speedups", PlanFig2, Fig2},
		{"fig3", "DRAM capacity and bandwidth specifications", nil, Fig3},
		{"fig8", "Analytic access latency of LLT designs", nil, Fig8},
		{"fig9", "Speedup of Ideal / Embedded / Co-Located LLT", PlanFig9, Fig9},
		{"fig12", "Speedup with SAM / LLP / Perfect prediction", PlanFig12, Fig12},
		{"table3", "Accuracy of the Line Location Predictor", PlanTable3, Table3},
		{"fig13", "Headline speedups: Cache, TLM, CAMEO, DoubleUse", PlanFig13, Fig13},
		{"table4", "Bandwidth usage in memory and storage", PlanTable4, Table4},
		{"fig14", "Normalized power and energy-delay product", PlanFig14, Fig14},
		{"fig15", "Optimized page placement: TLM-Freq / TLM-Oracle vs CAMEO", PlanFig15, Fig15},
		// Extensions beyond the paper's figures (DESIGN.md; EXPERIMENTS.md).
		{"ext-hybrid", "Extension: frequency-filtered CAMEO swaps (Section VI-D)", PlanExtHybrid, ExtHybrid},
		{"ext-threshold", "Extension: TLM-Dynamic migration-threshold sweep", PlanExtThreshold, ExtThreshold},
		{"ext-ratio", "Extension: stacked share sweep at fixed 16 GB total", PlanExtRatio, ExtRatio},
		{"ext-scale", "Extension: headline orderings at double capacity scale", nil, ExtScale},
		{"ext-mix", "Extension: multi-programmed workload mixes", PlanExtMix, ExtMix},
		{"ext-controller", "Extension: write-buffered memory controller", PlanExtController, ExtController},
		{"ext-dramcache", "Extension: Loh-Hill vs Alloy DRAM caches vs CAMEO", PlanExtDRAMCache, ExtDRAMCache},
		{"ext-knobs", "Extension: model-fidelity knobs (refresh, TLB, L3)", PlanExtKnobs, ExtKnobs},
		{"ext-lltcache", "Extension: SRAM entry cache for the Embedded LLT", PlanExtLLTCache, ExtLLTCache},
		{"ext-neworgs", "Extension: MemCache and Gemini vs Alloy and CAMEO", PlanExtNewOrgs, ExtNewOrgs},
	}
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// PlannedJobs collects the up-front simulation grid of the given
// experiments — the cell set a checkpoint manifest identifies a run by.
// Experiments with nil Plan (spec echoes, self-prewarming renders)
// contribute nothing; any cells they compute at render time are still
// cached, just not tracked in the manifest.
func PlannedJobs(s *Suite, exps []Experiment) []runner.Job {
	var jobs []runner.Job
	for _, e := range exps {
		if e.Plan != nil {
			jobs = append(jobs, e.Plan(s)...)
		}
	}
	return jobs
}

// RunExperiment prewarms the experiment's planned grid across the suite's
// worker pool, then renders it. Cancellation (Ctrl-C) drains the pool and
// returns ctx.Err(); a cell that panicked surfaces as an error. Under
// keep-going options, an experiment whose cells failed degrades to a
// bracketed note instead of aborting the suite — the failed cells stay
// quarantined in the suite's FailureReport.
func RunExperiment(ctx context.Context, s *Suite, e Experiment, w io.Writer) (err error) {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	s.bind(ctx)
	var degraded *runner.FailedCellsError
	if e.Plan != nil {
		if perr := s.Prewarm(ctx, e.Plan(s)); perr != nil {
			if !s.opts.KeepGoing || !errors.As(perr, &degraded) {
				return fmt.Errorf("experiments: %s: %w", e.ID, perr)
			}
		}
	}
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(runError)
			if !ok {
				panic(r)
			}
			if s.opts.KeepGoing {
				// The render pulled a cell that cannot be computed; leave a
				// note and keep the suite going.
				fmt.Fprintf(w, "[%s skipped: %s]\n", e.ID, errorFirstLine(re.err))
				err = nil
				return
			}
			err = fmt.Errorf("experiments: %s: %w", e.ID, re.err)
		}
	}()
	fmt.Fprintf(w, "\n### %s: %s\n\n", e.ID, e.Title)
	if degraded != nil {
		fmt.Fprintf(w, "[degraded: %s]\n\n", degraded.Report.Summary())
	}
	e.Run(s, w)
	return nil
}

// errorFirstLine trims an error to its first line for in-band notes (panic
// messages carry stacks, which are non-deterministic).
func errorFirstLine(err error) string {
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return msg
}

// RunAll regenerates every experiment in paper order.
func RunAll(ctx context.Context, s *Suite, w io.Writer) error {
	for _, e := range All() {
		if err := RunExperiment(ctx, s, e, w); err != nil {
			return err
		}
	}
	return nil
}
