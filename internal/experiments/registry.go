package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the paper artifact id ("fig13", "table3", ...).
	ID string
	// Title describes what the paper shows.
	Title string
	// Run regenerates it against the suite and writes the rows/series.
	Run func(s *Suite, w io.Writer)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Baseline system configuration", Table1},
		{"table2", "Workload characteristics (32 copies, rate mode)", Table2},
		{"fig2", "Motivation: Cache vs TLM vs DoubleUse speedups", Fig2},
		{"fig3", "DRAM capacity and bandwidth specifications", Fig3},
		{"fig8", "Analytic access latency of LLT designs", Fig8},
		{"fig9", "Speedup of Ideal / Embedded / Co-Located LLT", Fig9},
		{"fig12", "Speedup with SAM / LLP / Perfect prediction", Fig12},
		{"table3", "Accuracy of the Line Location Predictor", Table3},
		{"fig13", "Headline speedups: Cache, TLM, CAMEO, DoubleUse", Fig13},
		{"table4", "Bandwidth usage in memory and storage", Table4},
		{"fig14", "Normalized power and energy-delay product", Fig14},
		{"fig15", "Optimized page placement: TLM-Freq / TLM-Oracle vs CAMEO", Fig15},
		// Extensions beyond the paper's figures (DESIGN.md; EXPERIMENTS.md).
		{"ext-hybrid", "Extension: frequency-filtered CAMEO swaps (Section VI-D)", ExtHybrid},
		{"ext-threshold", "Extension: TLM-Dynamic migration-threshold sweep", ExtThreshold},
		{"ext-ratio", "Extension: stacked share sweep at fixed 16 GB total", ExtRatio},
		{"ext-scale", "Extension: headline orderings at double capacity scale", ExtScale},
		{"ext-mix", "Extension: multi-programmed workload mixes", ExtMix},
		{"ext-controller", "Extension: write-buffered memory controller", ExtController},
		{"ext-dramcache", "Extension: Loh-Hill vs Alloy DRAM caches vs CAMEO", ExtDRAMCache},
		{"ext-knobs", "Extension: model-fidelity knobs (refresh, TLB, L3)", ExtKnobs},
		{"ext-lltcache", "Extension: SRAM entry cache for the Embedded LLT", ExtLLTCache},
	}
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// RunAll regenerates every experiment in paper order.
func RunAll(s *Suite, w io.Writer) {
	for _, e := range All() {
		fmt.Fprintf(w, "\n### %s: %s\n\n", e.ID, e.Title)
		e.Run(s, w)
	}
}
