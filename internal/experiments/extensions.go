package experiments

import (
	"io"

	"cameo/internal/cameo"
	"cameo/internal/runner"
	"cameo/internal/stats"
	"cameo/internal/system"
	"cameo/internal/workload"
)

// The ext-* experiments go beyond the paper's figures: they implement the
// extension Section VI-D sketches and the sensitivity studies the paper's
// motivation implies but does not evaluate.

func extHybridCols(s *Suite) []column {
	plain := s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)
	filt2 := plain
	filt2.HotSwapThreshold = 2
	filt4 := plain
	filt4.HotSwapThreshold = 4
	return []column{
		{"CAMEO", plain},
		{"CAMEO-hot2", filt2},
		{"CAMEO-hot4", filt4},
	}
}

// PlanExtHybrid declares ExtHybrid's grid.
func PlanExtHybrid(s *Suite) []runner.Job { return s.planSpeedup(extHybridCols(s)) }

// ExtHybrid evaluates the Section VI-D extension: CAMEO with a
// page-frequency filter in front of the swap machinery, so cold
// (streamed-once) pages no longer displace hot stacked residents.
func ExtHybrid(s *Suite, w io.Writer) {
	s.speedupTable("Extension: CAMEO with frequency-filtered swaps (Section VI-D)",
		extHybridCols(s), w)
}

func extThresholdCols(s *Suite) []column {
	mk := func(n int) system.Config {
		cfg := s.sysConfig(system.TLMDynamic)
		cfg.MigrationThreshold = n
		return cfg
	}
	return []column{
		{"touch-1", mk(1)},
		{"touch-4", mk(4)},
		{"touch-16", mk(16)},
	}
}

// PlanExtThreshold declares ExtThreshold's grid.
func PlanExtThreshold(s *Suite) []runner.Job { return s.planSpeedup(extThresholdCols(s)) }

// ExtThreshold sweeps TLM-Dynamic's migration trigger: the paper migrates
// on the first touch; deferring until N touches trades locality for
// migration bandwidth — the knob that would have rescued milc.
func ExtThreshold(s *Suite, w io.Writer) {
	s.speedupTable("Extension: TLM-Dynamic migration-threshold sweep", extThresholdCols(s), w)
}

// extRatioCells is the (organization, stacked-divisor) grid of ExtRatio.
func extRatioCells(s *Suite) []system.Config {
	mk := func(org system.OrgKind, div int) system.Config {
		cfg := s.sysConfig(org)
		cfg.StackedDivisor = div
		return cfg
	}
	return []system.Config{
		mk(system.Cache, 4), mk(system.Cache, 2),
		mk(system.TLMStatic, 4), mk(system.TLMStatic, 2),
		mk(system.CAMEO, 4), mk(system.CAMEO, 2),
	}
}

// PlanExtRatio declares ExtRatio's grid (cells plus the shared baseline).
func PlanExtRatio(s *Suite) []runner.Job {
	cfgs := append([]system.Config{s.sysConfig(system.Baseline)}, extRatioCells(s)...)
	return s.planConfigs(cfgs)
}

// ExtRatio holds total capacity at 16 GB and moves the stacked share from
// the paper's quarter to the half the introduction says technology is
// heading toward, for the three main design families.
func ExtRatio(s *Suite, w io.Writer) {
	tab := stats.NewTable("Extension: stacked share of a fixed 16 GB total",
		"Workload", "Class", "Cache 1/4", "Cache 1/2", "TLM-S 1/4", "TLM-S 1/2", "CAMEO 1/4", "CAMEO 1/2")
	cells := extRatioCells(s)
	agg := make([][]float64, len(cells))
	for _, spec := range s.benchmarks() {
		row := []any{spec.Name, spec.Class.String()}
		for i, cfg := range cells {
			// Each divisor has its own baseline-free comparison: the
			// baseline (no stacked DRAM, 12 GB) is independent of the
			// divisor, so the Table I baseline is reused.
			sp := s.speedup(spec, cfg)
			row = append(row, sp)
			agg[i] = append(agg[i], sp)
		}
		tab.AddRowF(row...)
	}
	row := []any{"Gmean", "ALL"}
	for i := range cells {
		row = append(row, stats.Gmean(agg[i]))
	}
	tab.AddRowF(row...)
	tab.Render(w)
}

// ExtScale re-runs the headline comparison at a finer scale to show the
// orderings are not an artifact of the default 1/1024 operating point. It
// has no top-level Plan: the grid lives at a different scale, so it builds
// a child suite (sharing the worker pool, memo map, and persistent cache)
// and prewarms through that.
func ExtScale(s *Suite, w io.Writer) {
	half, err := s.child(Options{
		ScaleDiv:     s.opts.ScaleDiv / 2,
		Cores:        s.opts.Cores,
		InstrPerCore: s.opts.InstrPerCore,
		Seed:         s.opts.Seed,
		Benchmarks:   pickScaleSubset(s),
		Shards:       s.opts.Shards,
	})
	if err != nil {
		panic(runError{err})
	}
	cols := []column{
		{"Cache", half.sysConfig(system.Cache)},
		{"TLM-Static", half.sysConfig(system.TLMStatic)},
		{"CAMEO", half.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)},
		{"DoubleUse", half.sysConfig(system.DoubleUse)},
	}
	if err := half.Prewarm(half.ctx, half.planSpeedup(cols)); err != nil {
		panic(runError{err})
	}
	half.speedupTable("Extension: headline orderings at double capacity scale", cols, w)
}

// extControllerCfgs returns ExtController's full grid for one benchmark:
// the three controller-matched baselines plus the six compared cells.
func extControllerCfgs(s *Suite) []system.Config {
	mk := func(org system.OrgKind, buffered bool) system.Config {
		cfg := s.sysConfig(org)
		cfg.WriteBuffered = buffered
		return cfg
	}
	mkF := func(org system.OrgKind) system.Config {
		cfg := s.sysConfig(org)
		cfg.FRFCFS = true
		return cfg
	}
	cam := s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)
	camWQ := cam
	camWQ.WriteBuffered = true
	camF := cam
	camF.FRFCFS = true
	return []system.Config{
		mk(system.Baseline, false), mk(system.Baseline, true), mkF(system.Baseline),
		mk(system.Cache, false), mk(system.Cache, true), mkF(system.Cache),
		cam, camWQ, camF,
	}
}

// PlanExtController declares ExtController's grid.
func PlanExtController(s *Suite) []runner.Job {
	return s.planConfigs(extControllerCfgs(s))
}

// ExtController measures the DRAM-controller write-queue model (reads
// prioritized over posted writes, idle-time drains) against the paper-style
// in-order service. Each variant is normalized against a baseline using the
// same controller, so the columns compare organization orderings, not raw
// controller throughput.
func ExtController(s *Suite, w io.Writer) {
	cfgs := extControllerCfgs(s)
	basePlainCfg, baseWQCfg, baseFCfg := cfgs[0], cfgs[1], cfgs[2]

	tab := stats.NewTable("Extension: memory-controller models (per-controller baselines)",
		"Workload", "Class", "Cache", "Cache+WQ", "Cache+FRFCFS", "CAMEO", "CAMEO+WQ", "CAMEO+FRFCFS")
	agg := make([][]float64, 6)
	for _, spec := range s.benchmarks() {
		basePlain := s.result(spec, basePlainCfg)
		baseWQ := s.result(spec, baseWQCfg)
		baseF := s.result(spec, baseFCfg)
		cells := []struct {
			cfg  system.Config
			base system.Result
		}{
			{cfgs[3], basePlain},
			{cfgs[4], baseWQ},
			{cfgs[5], baseF},
			{cfgs[6], basePlain},
			{cfgs[7], baseWQ},
			{cfgs[8], baseF},
		}
		row := []any{spec.Name, spec.Class.String()}
		for i, c := range cells {
			sp := stats.Speedup(c.base.Cycles, s.result(spec, c.cfg).Cycles)
			row = append(row, sp)
			agg[i] = append(agg[i], sp)
		}
		tab.AddRowF(row...)
	}
	row := []any{"Gmean", "ALL"}
	for i := range agg {
		row = append(row, stats.Gmean(agg[i]))
	}
	tab.AddRowF(row...)
	tab.Render(w)
}

func extDRAMCacheCols(s *Suite) []column {
	return []column{
		{"LH-Cache", s.sysConfig(system.LHCache)},
		{"LH+MissMap", s.sysConfig(system.LHCacheMM)},
		{"Alloy", s.sysConfig(system.Cache)},
		{"CAMEO", s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)},
	}
}

// PlanExtDRAMCache declares ExtDRAMCache's grid.
func PlanExtDRAMCache(s *Suite) []runner.Job { return s.planSpeedup(extDRAMCacheCols(s)) }

// ExtDRAMCache pits the two hardware-cache designs from the literature
// against each other and against CAMEO: the set-associative Loh-Hill cache
// (tag serialization, optional idealized MissMap) and the direct-mapped
// Alloy cache the paper builds on — reproducing the Alloy paper's claim
// (latency beats associativity in DRAM caches) inside this simulator.
func ExtDRAMCache(s *Suite, w io.Writer) {
	s.speedupTable("Extension: DRAM-cache designs vs CAMEO", extDRAMCacheCols(s), w)
}

func extLLTCacheCfgs(s *Suite) []system.Config {
	mk := func(entries int) system.Config {
		cfg := s.cameoCfg(cameo.EmbeddedLLT, cameo.SAM)
		cfg.LLTCacheEntries = entries
		return cfg
	}
	return []system.Config{mk(0), mk(4096), mk(65536), s.cameoCfg(cameo.CoLocatedLLT, cameo.SAM)}
}

// PlanExtLLTCache declares ExtLLTCache's grid (cells plus baseline).
func PlanExtLLTCache(s *Suite) []runner.Job {
	cfgs := append([]system.Config{s.sysConfig(system.Baseline)}, extLLTCacheCfgs(s)...)
	return s.planConfigs(cfgs)
}

// ExtLLTCache gives the Embedded-LLT design the SRAM entry cache follow-on
// work reached for, asking how much of Co-Located's advantage is layout and
// how much is just avoiding the second DRAM trip.
func ExtLLTCache(s *Suite, w io.Writer) {
	tab := stats.NewTable("Extension: SRAM entry cache for Embedded-LLT",
		"Workload", "Class", "Embedded", "Emb+4K", "Emb+64K", "CoLocated")
	cols := extLLTCacheCfgs(s)
	agg := make([][]float64, len(cols))
	for _, spec := range s.benchmarks() {
		row := []any{spec.Name, spec.Class.String()}
		for i, cfg := range cols {
			sp := s.speedup(spec, cfg)
			row = append(row, sp)
			agg[i] = append(agg[i], sp)
		}
		tab.AddRowF(row...)
	}
	row := []any{"Gmean", "ALL"}
	for i := range cols {
		row = append(row, stats.Gmean(agg[i]))
	}
	tab.AddRowF(row...)
	tab.Render(w)
}

// extKnobs is the knob list of ExtKnobs, in column order.
type knob struct {
	label string
	apply func(*system.Config)
}

func extKnobList() []knob {
	return []knob{
		{"plain", func(*system.Config) {}},
		{"+refresh", func(c *system.Config) { c.Refresh = true }},
		{"+tlb", func(c *system.Config) { c.UseTLB = true }},
		{"+l3", func(c *system.Config) { c.UseL3 = true }},
	}
}

// PlanExtKnobs declares ExtKnobs' grid: every knob applied to both the
// baseline and CAMEO. (The canonical cell key covers every Config field,
// so knob variants memoize safely.)
func PlanExtKnobs(s *Suite) []runner.Job {
	var cfgs []system.Config
	for _, k := range extKnobList() {
		bcfg := s.sysConfig(system.Baseline)
		k.apply(&bcfg)
		ccfg := s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)
		k.apply(&ccfg)
		cfgs = append(cfgs, bcfg, ccfg)
	}
	return s.planConfigs(cfgs)
}

// ExtKnobs measures the opt-in model-fidelity knobs (DRAM refresh, per-core
// TLBs, an explicit L3) one at a time on CAMEO, each normalized against a
// baseline with the same knob, so the deltas isolate how much each modeling
// simplification matters to the headline result.
func ExtKnobs(s *Suite, w io.Writer) {
	knobs := extKnobList()
	tab := stats.NewTable("Extension: model-fidelity knobs (CAMEO speedup, knob-matched baselines)",
		append([]string{"Workload", "Class"}, func() []string {
			var ls []string
			for _, k := range knobs {
				ls = append(ls, k.label)
			}
			return ls
		}()...)...)
	agg := make([][]float64, len(knobs))
	for _, spec := range s.benchmarks() {
		row := []any{spec.Name, spec.Class.String()}
		for i, k := range knobs {
			bcfg := s.sysConfig(system.Baseline)
			k.apply(&bcfg)
			ccfg := s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)
			k.apply(&ccfg)
			base := s.result(spec, bcfg)
			cam := s.result(spec, ccfg)
			sp := stats.Speedup(base.Cycles, cam.Cycles)
			row = append(row, sp)
			agg[i] = append(agg[i], sp)
		}
		tab.AddRowF(row...)
	}
	row := []any{"Gmean", "ALL"}
	for i := range knobs {
		row = append(row, stats.Gmean(agg[i]))
	}
	tab.AddRowF(row...)
	tab.Render(w)
}

func extNewOrgCols(s *Suite) []column {
	return []column{
		{"Alloy", s.sysConfig(system.Cache)},
		{"MemCache", s.sysConfig(system.MemCache)},
		{"Gemini", s.sysConfig(system.Gemini)},
		{"CAMEO", s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)},
	}
}

// PlanExtNewOrgs declares ExtNewOrgs' grid.
func PlanExtNewOrgs(s *Suite) []runner.Job { return s.planSpeedup(extNewOrgCols(s)) }

// ExtNewOrgs compares the two organizations added from the related papers —
// MemCache's static part-memory/part-cache split and Gemini's hybrid
// direct/set-associative mapping — against the Alloy cache they build on
// and against CAMEO, all at their registry defaults.
func ExtNewOrgs(s *Suite, w io.Writer) {
	s.speedupTable("Extension: related-paper organizations (MemCache, Gemini) vs Alloy and CAMEO",
		extNewOrgCols(s), w)
}

// pickScaleSubset keeps ExtScale affordable: the configured subset if one
// was given, else one benchmark per class.
func pickScaleSubset(s *Suite) []string {
	if len(s.opts.Benchmarks) > 0 {
		return s.opts.Benchmarks
	}
	var out []string
	seen := map[workload.Class]bool{}
	for _, spec := range workload.Specs() {
		if !seen[spec.Class] {
			seen[spec.Class] = true
			out = append(out, spec.Name)
		}
	}
	return out
}
