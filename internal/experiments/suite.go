// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each experiment is a
// named generator that runs the required (benchmark, organization) grid and
// renders the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"cameo/internal/cameo"
	"cameo/internal/stats"
	"cameo/internal/system"
	"cameo/internal/workload"
)

// Options scales the whole suite. Zero fields take defaults.
type Options struct {
	// ScaleDiv divides all capacities and footprints (DESIGN.md).
	ScaleDiv uint64
	// Cores is the rate-mode copy count.
	Cores int
	// InstrPerCore is each core's instruction budget.
	InstrPerCore uint64
	// Seed drives all randomness.
	Seed uint64
	// Benchmarks restricts the workload list (empty = all of Table II).
	Benchmarks []string
}

// DefaultOptions returns the suite defaults: 1/1024 scale, the paper's 32
// cores, 600K instructions per core — the calibrated operating point of
// EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{ScaleDiv: 1024, Cores: 32, InstrPerCore: 600_000, Seed: 0xCA3E0}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.ScaleDiv == 0 {
		o.ScaleDiv = d.ScaleDiv
	}
	if o.Cores == 0 {
		o.Cores = d.Cores
	}
	if o.InstrPerCore == 0 {
		o.InstrPerCore = d.InstrPerCore
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Suite runs experiments, memoizing (benchmark, organization) results so
// that e.g. Fig 13, Table IV, and Fig 14 share one grid of runs.
type Suite struct {
	opts  Options
	cache map[string]system.Result
}

// NewSuite builds a suite with the given options.
func NewSuite(opts Options) *Suite {
	return &Suite{opts: opts.withDefaults(), cache: map[string]system.Result{}}
}

// Options returns the effective options.
func (s *Suite) Options() Options { return s.opts }

// benchmarks returns the selected workload specs.
func (s *Suite) benchmarks() []workload.Spec {
	if len(s.opts.Benchmarks) == 0 {
		return workload.Specs()
	}
	var out []workload.Spec
	for _, name := range s.opts.Benchmarks {
		sp, ok := workload.SpecByName(name)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown benchmark %q", name))
		}
		out = append(out, sp)
	}
	return out
}

// sysConfig lifts the suite options into a system config for org.
func (s *Suite) sysConfig(org system.OrgKind) system.Config {
	return system.Config{
		Org:          org,
		ScaleDiv:     s.opts.ScaleDiv,
		Cores:        s.opts.Cores,
		InstrPerCore: s.opts.InstrPerCore,
		Seed:         s.opts.Seed,
	}
}

// result runs (or recalls) one cell of the grid.
func (s *Suite) result(spec workload.Spec, cfg system.Config) system.Result {
	key := fmt.Sprintf("%s|%d|%d|%d|%d|%d|%d|%d|%v|%v", spec.Name, cfg.Org, cfg.LLT,
		cfg.Pred, cfg.MigrationThreshold, cfg.HotSwapThreshold, cfg.StackedDivisor,
		cfg.ScaleDiv, cfg.WriteBuffered, cfg.FRFCFS)
	if r, ok := s.cache[key]; ok {
		return r
	}
	r := system.Run(spec, cfg)
	s.cache[key] = r
	return r
}

// Results returns every memoized run in deterministic (key) order — the
// raw grid behind the rendered tables, for CSV export.
func (s *Suite) Results() []system.Result {
	keys := make([]string, 0, len(s.cache))
	for k := range s.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]system.Result, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.cache[k])
	}
	return out
}

// baseline returns the baseline run for spec.
func (s *Suite) baseline(spec workload.Spec) system.Result {
	return s.result(spec, s.sysConfig(system.Baseline))
}

// speedup returns cfg's speedup over the baseline for spec.
func (s *Suite) speedup(spec workload.Spec, cfg system.Config) float64 {
	return stats.Speedup(s.baseline(spec).Cycles, s.result(spec, cfg).Cycles)
}

// column is one design series in a speedup chart.
type column struct {
	label string
	cfg   system.Config
}

// cameoCfg builds a CAMEO config variant.
func (s *Suite) cameoCfg(llt cameo.LLTKind, pred cameo.PredKind) system.Config {
	cfg := s.sysConfig(system.CAMEO)
	cfg.LLT = llt
	cfg.Pred = pred
	return cfg
}

// speedupTable renders a per-benchmark speedup chart with class and overall
// geometric means — the shape of Figures 2, 9, 12, 13 and 15.
func (s *Suite) speedupTable(title string, cols []column, w io.Writer) {
	headers := append([]string{"Workload", "Class"}, make([]string, 0, len(cols))...)
	for _, c := range cols {
		headers = append(headers, c.label)
	}
	tab := stats.NewTable(title, headers...)

	perClass := map[workload.Class]map[string][]float64{}
	overall := map[string][]float64{}
	benches := s.benchmarks()
	sort.SliceStable(benches, func(i, j int) bool { return benches[i].Class < benches[j].Class })

	for _, spec := range benches {
		row := []any{spec.Name, spec.Class.String()}
		for _, c := range cols {
			sp := s.speedup(spec, c.cfg)
			row = append(row, sp)
			if perClass[spec.Class] == nil {
				perClass[spec.Class] = map[string][]float64{}
			}
			perClass[spec.Class][c.label] = append(perClass[spec.Class][c.label], sp)
			overall[c.label] = append(overall[c.label], sp)
		}
		tab.AddRowF(row...)
	}
	for _, class := range []workload.Class{workload.CapacityLimited, workload.LatencyLimited} {
		if perClass[class] == nil {
			continue
		}
		row := []any{"Gmean", class.String()}
		for _, c := range cols {
			row = append(row, stats.Gmean(perClass[class][c.label]))
		}
		tab.AddRowF(row...)
	}
	row := []any{"Gmean", "ALL"}
	for _, c := range cols {
		row = append(row, stats.Gmean(overall[c.label]))
	}
	tab.AddRowF(row...)
	tab.Render(w)
}
