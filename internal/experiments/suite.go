// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each experiment is a
// named generator that runs the required (benchmark, organization) grid and
// renders the same rows/series the paper reports. Grids execute through
// internal/runner: each experiment declares its cells up front (Plan), the
// runner fans them across a worker pool, and the render functions then pull
// from the memoized grid — so parallel output is byte-identical to serial.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"cameo/internal/cameo"
	"cameo/internal/faultinject"
	"cameo/internal/runner"
	"cameo/internal/stats"
	"cameo/internal/system"
	"cameo/internal/workload"
)

// Options scales the whole suite. Zero fields take defaults.
type Options struct {
	// ScaleDiv divides all capacities and footprints (DESIGN.md).
	ScaleDiv uint64
	// Cores is the rate-mode copy count.
	Cores int
	// InstrPerCore is each core's instruction budget.
	InstrPerCore uint64
	// Seed drives all randomness.
	Seed uint64
	// Benchmarks restricts the workload list (empty = all of Table II).
	Benchmarks []string
	// Jobs is the simulation worker-pool size (<=0 = GOMAXPROCS).
	Jobs int
	// Cache, when non-nil, persists cell results across invocations.
	Cache runner.Cache
	// Progress, when non-nil, receives live progress/ETA lines (stderr).
	Progress io.Writer
	// JobTimeout bounds each cell attempt (0 = no watchdog).
	JobTimeout time.Duration
	// Retries is the per-cell transient-failure retry budget.
	Retries int
	// KeepGoing renders around failed cells (experiments touching them are
	// skipped with a note) instead of aborting the whole suite.
	KeepGoing bool
	// Checkpoint, when non-nil, records completed cells for -resume.
	Checkpoint *runner.Checkpoint
	// Faults injects deterministic chaos at the job site (tests/CLI).
	Faults *faultinject.Plan
	// Shards, when nonzero, runs every cell in the group-sharded execution
	// mode with this many lane workers (system.Config.Shards). Output is
	// byte-identical at every nonzero value; 0 is the sequential engine.
	Shards int
}

// DefaultOptions returns the suite defaults: 1/1024 scale, the paper's 32
// cores, 600K instructions per core — the calibrated operating point of
// EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{ScaleDiv: 1024, Cores: 32, InstrPerCore: 600_000, Seed: 0xCA3E0}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.ScaleDiv == 0 {
		o.ScaleDiv = d.ScaleDiv
	}
	if o.Cores == 0 {
		o.Cores = d.Cores
	}
	if o.InstrPerCore == 0 {
		o.InstrPerCore = d.InstrPerCore
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Suite runs experiments, memoizing (benchmark, organization) results
// through a shared runner so that e.g. Fig 13, Table IV, and Fig 14 share
// one grid of runs — and so those runs execute in parallel.
type Suite struct {
	opts  Options
	specs []workload.Spec
	run   *runner.Runner
	ctx   context.Context
}

// NewSuite builds a suite with the given options. Unknown benchmark names
// are an error (listing the valid names) rather than a panic.
func NewSuite(opts Options) (*Suite, error) {
	opts = opts.withDefaults()
	specs, err := resolveBenchmarks(opts.Benchmarks)
	if err != nil {
		return nil, err
	}
	return &Suite{
		opts:  opts,
		specs: specs,
		run: runner.New(runner.Options{
			Jobs:       opts.Jobs,
			Cache:      opts.Cache,
			Progress:   opts.Progress,
			JobTimeout: opts.JobTimeout,
			Retries:    opts.Retries,
			KeepGoing:  opts.KeepGoing,
			Checkpoint: opts.Checkpoint,
			Faults:     opts.Faults,
		}),
		ctx: context.Background(),
	}, nil
}

// MustNewSuite is NewSuite for known-good options (tests, examples).
func MustNewSuite(opts Options) *Suite {
	s, err := NewSuite(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// resolveBenchmarks maps names to specs, defaulting to all of Table II.
func resolveBenchmarks(names []string) ([]workload.Spec, error) {
	if len(names) == 0 {
		return workload.Specs(), nil
	}
	out := make([]workload.Spec, 0, len(names))
	for _, name := range names {
		sp, ok := workload.SpecByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q (valid: %s)",
				name, strings.Join(BenchmarkNames(), ", "))
		}
		out = append(out, sp)
	}
	return out, nil
}

// BenchmarkNames returns every valid benchmark name in Table II order.
func BenchmarkNames() []string {
	specs := workload.Specs()
	names := make([]string, len(specs))
	for i, sp := range specs {
		names[i] = sp.Name
	}
	return names
}

// Options returns the effective options.
func (s *Suite) Options() Options { return s.opts }

// child builds a suite at different options that shares this suite's
// runner (worker pool, memoization, persistent cache) and context — cell
// keys carry the full configuration, so grids at several scales coexist.
func (s *Suite) child(opts Options) (*Suite, error) {
	opts = opts.withDefaults()
	specs, err := resolveBenchmarks(opts.Benchmarks)
	if err != nil {
		return nil, err
	}
	return &Suite{opts: opts, specs: specs, run: s.run, ctx: s.ctx}, nil
}

// bind points render-time pulls at ctx (cancellation during Prewarm and
// any residual render-time computes).
func (s *Suite) bind(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.ctx = ctx
}

// benchmarks returns the selected workload specs.
func (s *Suite) benchmarks() []workload.Spec {
	out := make([]workload.Spec, len(s.specs))
	copy(out, s.specs)
	return out
}

// sysConfig lifts the suite options into a system config for org.
func (s *Suite) sysConfig(org system.OrgKind) system.Config {
	cfg := system.Config{
		Org:          org,
		ScaleDiv:     s.opts.ScaleDiv,
		Cores:        s.opts.Cores,
		InstrPerCore: s.opts.InstrPerCore,
		Seed:         s.opts.Seed,
	}
	// The suite compares many organizations in one grid; a suite-wide
	// Shards applies to the organizations that declare shardable state and
	// leaves the rest on the sequential engine (their cells and keys are
	// exactly the unsharded ones, so caches still hit).
	if s.opts.Shards > 0 && system.SupportsSharding(org) {
		cfg.Shards = s.opts.Shards
	}
	return cfg
}

// runError wraps a runner failure so render functions (which have no error
// return) can unwind to RunExperiment, which recovers it into an error.
type runError struct{ err error }

func (e runError) Error() string { return e.err.Error() }

// Telemetry returns the observability dump of every cell the suite has
// run so far (see runner.Telemetry for the determinism contract).
func (s *Suite) Telemetry(includeTiming bool) runner.Telemetry {
	return s.run.Telemetry(includeTiming)
}

// FailureReport returns the key-sorted report of cells that exhausted
// their attempts under keep-going mode, or nil when everything succeeded.
func (s *Suite) FailureReport() *runner.FailureReport {
	return s.run.FailureReport()
}

// Prewarm executes the given grid cells across the worker pool ahead of
// rendering. It is purely a performance step: render functions compute any
// cell they find missing, so output is identical with or without it.
func (s *Suite) Prewarm(ctx context.Context, jobs []runner.Job) error {
	return s.run.RunAll(ctx, jobs)
}

// result runs (or recalls) one cell of the grid.
func (s *Suite) result(spec workload.Spec, cfg system.Config) system.Result {
	r, err := s.run.Get(s.ctx, runner.NewJob(spec, cfg))
	if err != nil {
		panic(runError{err})
	}
	return r
}

// mixResult runs (or recalls) one multi-programmed-mix cell.
func (s *Suite) mixResult(mix []workload.Spec, cfg system.Config) system.Result {
	r, err := s.run.Get(s.ctx, runner.MixJob(mix, cfg))
	if err != nil {
		panic(runError{err})
	}
	return r
}

// Results returns every memoized run in deterministic (canonical cell key)
// order — the raw grid behind the rendered tables, for CSV export. The
// order is independent of worker count and completion order.
func (s *Suite) Results() []system.Result {
	return s.run.Results()
}

// baseline returns the baseline run for spec.
func (s *Suite) baseline(spec workload.Spec) system.Result {
	return s.result(spec, s.sysConfig(system.Baseline))
}

// speedup returns cfg's speedup over the baseline for spec.
func (s *Suite) speedup(spec workload.Spec, cfg system.Config) float64 {
	return stats.Speedup(s.baseline(spec).Cycles, s.result(spec, cfg).Cycles)
}

// column is one design series in a speedup chart.
type column struct {
	label string
	cfg   system.Config
}

// cameoCfg builds a CAMEO config variant.
func (s *Suite) cameoCfg(llt cameo.LLTKind, pred cameo.PredKind) system.Config {
	cfg := s.sysConfig(system.CAMEO)
	cfg.LLT = llt
	cfg.Pred = pred
	return cfg
}

// planSpeedup declares the grid a speedupTable over cols pulls: the
// baseline plus every column config, for every benchmark.
func (s *Suite) planSpeedup(cols []column) []runner.Job {
	var jobs []runner.Job
	for _, spec := range s.benchmarks() {
		jobs = append(jobs, runner.NewJob(spec, s.sysConfig(system.Baseline)))
		for _, c := range cols {
			jobs = append(jobs, runner.NewJob(spec, c.cfg))
		}
	}
	return jobs
}

// planConfigs declares benchmarks x cfgs (no implicit baseline).
func (s *Suite) planConfigs(cfgs []system.Config) []runner.Job {
	var jobs []runner.Job
	for _, spec := range s.benchmarks() {
		for _, cfg := range cfgs {
			jobs = append(jobs, runner.NewJob(spec, cfg))
		}
	}
	return jobs
}

// speedupTable renders a per-benchmark speedup chart with class and overall
// geometric means — the shape of Figures 2, 9, 12, 13 and 15.
func (s *Suite) speedupTable(title string, cols []column, w io.Writer) {
	headers := append([]string{"Workload", "Class"}, make([]string, 0, len(cols))...)
	for _, c := range cols {
		headers = append(headers, c.label)
	}
	tab := stats.NewTable(title, headers...)

	perClass := map[workload.Class]map[string][]float64{}
	overall := map[string][]float64{}
	benches := s.benchmarks()
	sort.SliceStable(benches, func(i, j int) bool { return benches[i].Class < benches[j].Class })

	for _, spec := range benches {
		row := []any{spec.Name, spec.Class.String()}
		for _, c := range cols {
			sp := s.speedup(spec, c.cfg)
			row = append(row, sp)
			if perClass[spec.Class] == nil {
				perClass[spec.Class] = map[string][]float64{}
			}
			perClass[spec.Class][c.label] = append(perClass[spec.Class][c.label], sp)
			overall[c.label] = append(overall[c.label], sp)
		}
		tab.AddRowF(row...)
	}
	for _, class := range []workload.Class{workload.CapacityLimited, workload.LatencyLimited} {
		if perClass[class] == nil {
			continue
		}
		row := []any{"Gmean", class.String()}
		for _, c := range cols {
			row = append(row, stats.Gmean(perClass[class][c.label]))
		}
		tab.AddRowF(row...)
	}
	row := []any{"Gmean", "ALL"}
	for _, c := range cols {
		row = append(row, stats.Gmean(overall[c.label]))
	}
	tab.AddRowF(row...)
	tab.Render(w)
}
