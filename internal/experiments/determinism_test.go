package experiments

import (
	"context"
	"strings"
	"testing"

	"cameo/internal/report"
)

// TestParallelMatchesSerial is the determinism guarantee behind the golden
// tests: rendered experiment output AND the raw Results() grid (as CSV)
// from a parallel run are byte-identical to a serial run. It covers the
// main render shapes: speedup tables (fig13), aggregation across cells
// (table3, table4), mixes (ext-mix), knob cells (ext-knobs), and the
// child-suite prewarm path (ext-scale).
func TestParallelMatchesSerial(t *testing.T) {
	ids := []string{"fig13", "table3", "table4", "ext-mix", "ext-knobs", "ext-scale"}
	render := func(jobs int) (text, csv string) {
		s := MustNewSuite(Options{
			ScaleDiv:     4096,
			Cores:        4,
			InstrPerCore: 30_000,
			Seed:         7,
			Benchmarks:   []string{"sphinx3", "milc"},
			Jobs:         jobs,
		})
		var b strings.Builder
		for _, id := range ids {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			if err := RunExperiment(context.Background(), s, e, &b); err != nil {
				t.Fatalf("%s (jobs=%d): %v", id, jobs, err)
			}
		}
		var c strings.Builder
		if err := report.WriteCSV(&c, s.Results()); err != nil {
			t.Fatal(err)
		}
		return b.String(), c.String()
	}

	serialText, serialCSV := render(1)
	for _, jobs := range []int{4, 8} {
		parText, parCSV := render(jobs)
		if parText != serialText {
			t.Errorf("rendered output with -jobs %d differs from serial run", jobs)
		}
		if parCSV != serialCSV {
			t.Errorf("Results() CSV with -jobs %d differs from serial run", jobs)
		}
	}
	if !strings.Contains(serialCSV, "\n") || !strings.Contains(serialText, "Gmean") {
		t.Fatal("implausibly empty outputs")
	}
}

// TestPrewarmIsPureOptimization: rendering without any Prewarm produces
// the same bytes as rendering after a full Prewarm.
func TestPrewarmIsPureOptimization(t *testing.T) {
	opts := Options{ScaleDiv: 4096, Cores: 2, InstrPerCore: 20_000, Seed: 3,
		Benchmarks: []string{"sphinx3"}}
	e, _ := ByID("fig13")

	cold := MustNewSuite(opts)
	var coldOut strings.Builder
	e.Run(cold, &coldOut) // no prewarm: render computes on demand

	warm := MustNewSuite(opts)
	if err := warm.Prewarm(context.Background(), e.Plan(warm)); err != nil {
		t.Fatal(err)
	}
	var warmOut strings.Builder
	e.Run(warm, &warmOut)

	if coldOut.String() != warmOut.String() {
		t.Fatal("prewarmed render differs from on-demand render")
	}
	// And the plan covered the grid: the render added no new cells.
	if len(warm.Results()) != len(cold.Results()) {
		t.Fatalf("plan incomplete: %d cells after prewarm+render vs %d on demand",
			len(warm.Results()), len(cold.Results()))
	}
}

// TestPlansCoverTheirGrids: for every experiment with a Plan, prewarming
// then rendering must not add cells — i.e. the declared grid is complete.
func TestPlansCoverTheirGrids(t *testing.T) {
	for _, e := range All() {
		if e.Plan == nil {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			s := MustNewSuite(Options{ScaleDiv: 8192, Cores: 2, InstrPerCore: 5_000,
				Seed: 11, Benchmarks: []string{"sphinx3", "mcf"}})
			if err := s.Prewarm(context.Background(), e.Plan(s)); err != nil {
				t.Fatal(err)
			}
			planned := len(s.Results())
			var b strings.Builder
			e.Run(s, &b)
			if got := len(s.Results()); got != planned {
				t.Errorf("render added %d cells beyond the %d planned", got-planned, planned)
			}
		})
	}
}
