package experiments

import (
	"fmt"
	"io"

	"cameo/internal/cameo"
	"cameo/internal/stats"
	"cameo/internal/system"
	"cameo/internal/workload"
)

// ExtMix evaluates multi-programmed mixes — cores running different
// benchmarks — which the paper's rate-mode methodology does not cover but
// any real deployment of CAMEO would face: the stacked DRAM is now shared
// between programs with different locality.
func ExtMix(s *Suite, w io.Writer) {
	mixes := [][]string{
		{"gcc", "sphinx3", "xalancbmk", "omnetpp"},  // hot latency mix
		{"milc", "libquantum", "leslie3d", "bzip2"}, // streaming-leaning mix
		{"mcf", "gcc", "lbm", "sphinx3"},            // capacity + latency blend
	}
	orgs := []struct {
		label string
		cfg   system.Config
	}{
		{"Cache", s.sysConfig(system.Cache)},
		{"TLM-Static", s.sysConfig(system.TLMStatic)},
		{"TLM-Dynamic", s.sysConfig(system.TLMDynamic)},
		{"CAMEO", s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)},
	}

	tab := stats.NewTable("Extension: multi-programmed mixes",
		"Mix", "Cache", "TLM-Static", "TLM-Dynamic", "CAMEO")
	for _, names := range mixes {
		var mix []workload.Spec
		for _, n := range names {
			spec, ok := workload.SpecByName(n)
			if !ok {
				panic(fmt.Sprintf("experiments: unknown benchmark %q", n))
			}
			mix = append(mix, spec)
		}
		bcfg := s.sysConfig(system.Baseline)
		base := system.RunMix(mix, bcfg)
		row := []any{base.Benchmark}
		for _, org := range orgs {
			r := system.RunMix(mix, org.cfg)
			row = append(row, stats.Speedup(base.Cycles, r.Cycles))
		}
		tab.AddRowF(row...)
	}
	tab.Render(w)
}
