package experiments

import (
	"fmt"
	"io"

	"cameo/internal/cameo"
	"cameo/internal/runner"
	"cameo/internal/stats"
	"cameo/internal/system"
	"cameo/internal/workload"
)

// extMixes are the hardcoded multi-programmed mixes ExtMix evaluates.
var extMixes = [][]string{
	{"gcc", "sphinx3", "xalancbmk", "omnetpp"},  // hot latency mix
	{"milc", "libquantum", "leslie3d", "bzip2"}, // streaming-leaning mix
	{"mcf", "gcc", "lbm", "sphinx3"},            // capacity + latency blend
}

// extMixOrgs returns the organizations ExtMix compares, in column order.
func extMixOrgs(s *Suite) []struct {
	label string
	cfg   system.Config
} {
	return []struct {
		label string
		cfg   system.Config
	}{
		{"Cache", s.sysConfig(system.Cache)},
		{"TLM-Static", s.sysConfig(system.TLMStatic)},
		{"TLM-Dynamic", s.sysConfig(system.TLMDynamic)},
		{"CAMEO", s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)},
	}
}

// resolveMix maps the hardcoded mix names to specs (programmer error if
// any is missing, hence the panic).
func resolveMix(names []string) []workload.Spec {
	var mix []workload.Spec
	for _, n := range names {
		spec, ok := workload.SpecByName(n)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown benchmark %q", n))
		}
		mix = append(mix, spec)
	}
	return mix
}

// PlanExtMix declares the mix grid: each mix under the baseline and every
// compared organization.
func PlanExtMix(s *Suite) []runner.Job {
	var jobs []runner.Job
	for _, names := range extMixes {
		mix := resolveMix(names)
		jobs = append(jobs, runner.MixJob(mix, s.sysConfig(system.Baseline)))
		for _, org := range extMixOrgs(s) {
			jobs = append(jobs, runner.MixJob(mix, org.cfg))
		}
	}
	return jobs
}

// ExtMix evaluates multi-programmed mixes — cores running different
// benchmarks — which the paper's rate-mode methodology does not cover but
// any real deployment of CAMEO would face: the stacked DRAM is now shared
// between programs with different locality.
func ExtMix(s *Suite, w io.Writer) {
	tab := stats.NewTable("Extension: multi-programmed mixes",
		"Mix", "Cache", "TLM-Static", "TLM-Dynamic", "CAMEO")
	for _, names := range extMixes {
		mix := resolveMix(names)
		base := s.mixResult(mix, s.sysConfig(system.Baseline))
		row := []any{base.Benchmark}
		for _, org := range extMixOrgs(s) {
			r := s.mixResult(mix, org.cfg)
			row = append(row, stats.Speedup(base.Cycles, r.Cycles))
		}
		tab.AddRowF(row...)
	}
	tab.Render(w)
}
