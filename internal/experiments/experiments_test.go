package experiments

import (
	"strings"
	"testing"

	"cameo/internal/system"
	"cameo/internal/workload"
)

// tinySuite keeps experiment tests fast: 2 benchmarks, few instructions.
func tinySuite() *Suite {
	return MustNewSuite(Options{
		ScaleDiv:     2048,
		Cores:        4,
		InstrPerCore: 60_000,
		Seed:         7,
		Benchmarks:   []string{"sphinx3", "lbm"},
	})
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig2", "fig3", "fig8", "fig9",
		"fig12", "table3", "fig13", "table4", "fig14", "fig15",
		"ext-hybrid", "ext-threshold", "ext-ratio", "ext-scale", "ext-mix", "ext-controller", "ext-dramcache", "ext-knobs", "ext-lltcache", "ext-neworgs"}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(All()), len(want))
	}
	for _, id := range want {
		e, ok := ByID(id)
		if !ok {
			t.Errorf("experiment %s missing", id)
			continue
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("bogus id resolved")
	}
	if len(IDs()) != len(want) {
		t.Errorf("IDs() returned %d entries", len(IDs()))
	}
}

func TestEveryExperimentProducesATable(t *testing.T) {
	s := tinySuite()
	for _, e := range All() {
		var b strings.Builder
		e.Run(s, &b)
		out := b.String()
		if !strings.Contains(out, "==") {
			t.Errorf("%s: no table header in output:\n%s", e.ID, out)
		}
		if len(strings.Split(out, "\n")) < 4 {
			t.Errorf("%s: implausibly short output:\n%s", e.ID, out)
		}
	}
}

func TestSuiteMemoization(t *testing.T) {
	s := tinySuite()
	spec, _ := workload.SpecByName("sphinx3")
	cfg := s.sysConfig(system.Baseline)
	a := s.result(spec, cfg)
	n := len(s.Results())
	b := s.result(spec, cfg)
	if len(s.Results()) != n {
		t.Fatal("repeat run was not memoized")
	}
	if a.Cycles != b.Cycles {
		t.Fatal("memoized result differs")
	}
}

func TestSpeedupTableHasGmeanRows(t *testing.T) {
	s := tinySuite()
	var b strings.Builder
	Fig13(s, &b)
	out := b.String()
	for _, want := range []string{"Gmean", "Capacity", "Latency", "ALL", "CAMEO", "DoubleUse"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig13 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3SumsTo100(t *testing.T) {
	s := tinySuite()
	var b strings.Builder
	Table3(s, &b)
	out := b.String()
	if !strings.Contains(out, "Overall Accuracy") {
		t.Fatalf("table3 missing accuracy row:\n%s", out)
	}
}

func TestDescribe(t *testing.T) {
	var b strings.Builder
	Describe(tinySuite(), &b)
	if !strings.Contains(b.String(), "scale=1/2048") {
		t.Fatalf("describe output: %s", b.String())
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	_, err := NewSuite(Options{Benchmarks: []string{"nosuch"}, ScaleDiv: 2048,
		Cores: 1, InstrPerCore: 1000, Seed: 1})
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "nosuch") {
		t.Errorf("error does not name the bad benchmark: %v", err)
	}
	// The error lists the valid names so CLIs can surface it directly.
	for _, want := range []string{"mcf", "sphinx3", "milc"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error listing missing %q: %v", want, err)
		}
	}
}

func TestBenchmarkNames(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != len(workload.Specs()) {
		t.Fatalf("BenchmarkNames has %d entries, want %d", len(names), len(workload.Specs()))
	}
}

func TestOptionsDefaulting(t *testing.T) {
	s := MustNewSuite(Options{})
	o := s.Options()
	d := DefaultOptions()
	if o.ScaleDiv != d.ScaleDiv || o.Cores != d.Cores || o.InstrPerCore != d.InstrPerCore {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

func TestMean(t *testing.T) {
	if mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
}
