package experiments

import (
	"fmt"
	"io"

	"cameo/internal/cameo"
	"cameo/internal/dram"
	"cameo/internal/runner"
	"cameo/internal/stats"
	"cameo/internal/system"
	"cameo/internal/workload"
)

// Fig3 prints the capacity/bandwidth landscape the paper's background uses:
// published module specifications plus this simulator's two Table I modules.
func Fig3(s *Suite, w io.Writer) {
	tab := stats.NewTable("Figure 3: DRAM capacity and bandwidth",
		"Module", "Capacity GB", "Bandwidth GB/s")
	// Published parts cited by the paper (HMC 1.0/Gen2, HBM, DDR3/DDR4).
	specs := []struct {
		name string
		gb   float64
		bw   float64
	}{
		{"DDR3-1600 (2ch)", 16, 25.6},
		{"DDR4-3200 (2ch)", 32, 51.2},
		{"HMC Gen1", 0.5, 128},
		{"HMC Gen2", 4, 160},
		{"HBM (4-stack)", 4, 128},
	}
	for _, sp := range specs {
		tab.AddRowF(sp.name, sp.gb, sp.bw)
	}
	stk := dram.StackedConfig(system.StackedBytesFull)
	off := dram.OffChipConfig(system.OffChipBytesFull)
	tab.AddRowF("this model: stacked", 4.0, stk.PeakBandwidthGBs())
	tab.AddRowF("this model: off-chip", 12.0, off.PeakBandwidthGBs())
	tab.Render(w)
}

// Fig8 prints the closed-form latency comparison of the LLT designs.
func Fig8(s *Suite, w io.Writer) {
	tab := stats.NewTable("Figure 8: access latency in units (stacked=1, off-chip=2)",
		"Design", "Hit (in stacked)", "Miss (off-chip)")
	for _, d := range cameo.AnalyticLatencies() {
		tab.AddRowF(d.Design, d.Hit, d.Miss)
	}
	tab.Render(w)
}

// PlanFig14 declares Fig14's grid (same design points as Fig 13).
func PlanFig14(s *Suite) []runner.Job { return s.planSpeedup(fig14Cols(s)) }

func fig14Cols(s *Suite) []column {
	return []column{
		{"Cache", s.sysConfig(system.Cache)},
		{"TLM-Static", s.sysConfig(system.TLMStatic)},
		{"TLM-Dynamic", s.sysConfig(system.TLMDynamic)},
		{"CAMEO", s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)},
		{"DoubleUse", s.sysConfig(system.DoubleUse)},
	}
}

// Fig14 reports normalized power and EDP for the Fig 13 design points,
// using the Section VI-C power split assumptions.
func Fig14(s *Suite, w io.Writer) {
	cols := fig14Cols(s)
	tab := stats.NewTable("Figure 14: normalized power and energy-delay product",
		"Class", "Design", "Power", "EDP")
	for _, class := range []workload.Class{workload.CapacityLimited, workload.LatencyLimited} {
		for _, c := range cols {
			var powers, edps []float64
			for _, spec := range s.benchmarks() {
				if spec.Class != class {
					continue
				}
				in := s.powerInputs(spec, c.cfg)
				powers = append(powers, stats.NormalizedPower(in))
				edps = append(edps, stats.NormalizedEDP(in))
			}
			if len(powers) == 0 {
				continue
			}
			tab.AddRowF(class.String(), c.label, mean(powers), stats.Gmean(edps))
		}
	}
	tab.Render(w)
}

// powerInputs derives the Section VI-C power-model inputs for one run.
func (s *Suite) powerInputs(spec workload.Spec, cfg system.Config) stats.PowerInputs {
	base := s.baseline(spec)
	r := s.result(spec, cfg)
	rate := func(bytes, cycles uint64) float64 {
		if cycles == 0 {
			return 0
		}
		return float64(bytes) / float64(cycles)
	}
	baseOff := rate(base.OffChip.Bytes(), base.Cycles)
	in := stats.PowerInputs{
		CapacityLimited: spec.Class == workload.CapacityLimited,
		TimeRatio:       float64(r.Cycles) / float64(base.Cycles),
		HasStacked:      cfg.Org != system.Baseline,
	}
	if baseOff > 0 {
		in.OffChipByteRatio = rate(r.OffChip.Bytes(), r.Cycles) / baseOff
		in.StackedByteRatio = rate(r.Stacked.Bytes(), r.Cycles) / baseOff
	}
	if baseSto := rate(base.StorageBytes(), base.Cycles); baseSto > 0 {
		in.StorageByteRatio = rate(r.StorageBytes(), r.Cycles) / baseSto
	}
	return in
}

// Describe prints the suite parameters ahead of a run.
func Describe(s *Suite, w io.Writer) {
	o := s.Options()
	fmt.Fprintf(w, "suite: scale=1/%d cores=%d instr/core=%d seed=%#x benchmarks=%d\n",
		o.ScaleDiv, o.Cores, o.InstrPerCore, o.Seed, len(s.benchmarks()))
}
