package experiments

import (
	"fmt"
	"io"

	"cameo/internal/cameo"
	"cameo/internal/dram"
	"cameo/internal/runner"
	"cameo/internal/stats"
	"cameo/internal/system"
	"cameo/internal/workload"
)

// Table1 echoes the simulated system configuration (Table I), including the
// scaled capacities this run uses.
func Table1(s *Suite, w io.Writer) {
	o := s.Options()
	stk := dram.StackedConfig(system.StackedBytesFull / o.ScaleDiv)
	off := dram.OffChipConfig(system.OffChipBytesFull / o.ScaleDiv)
	tab := stats.NewTable("Table I: baseline system configuration", "Parameter", "Value")
	tab.AddRowF("Cores", o.Cores)
	tab.AddRowF("Core width", "2-wide (retire-rate model)")
	tab.AddRowF("Frequency", "3.2 GHz")
	tab.AddRowF("Shared L3", fmt.Sprintf("%d KB, 16-way, 24 cycles (scaled 1/%d)", (32<<20)/o.ScaleDiv/1024, o.ScaleDiv))
	for _, c := range []dram.Config{stk, off} {
		tab.AddRowF(c.Name+" capacity", fmt.Sprintf("%d MB (full: %d GB / %d)", c.CapacityBytes>>20, int64(c.CapacityBytes*o.ScaleDiv)>>30, o.ScaleDiv))
		tab.AddRowF(c.Name+" bus", fmt.Sprintf("%d MHz DDR, %d channels x %d bits", c.BusMHz, c.Channels, c.BusWidthBits))
		tab.AddRowF(c.Name+" banks", fmt.Sprintf("%d per rank", c.Banks))
		tab.AddRowF(c.Name+" timing", fmt.Sprintf("tCAS-tRCD-tRP-tRAS %d-%d-%d-%d bus cycles", c.TCAS, c.TRCD, c.TRP, c.TRAS))
	}
	tab.AddRowF("Page fault latency", "100K cycles (32 us SSD)")
	tab.Render(w)
}

// Table2 reports each benchmark's measured MPKI and (scaled) footprint from
// a dry run of the generators, next to the paper's published values.
func Table2(s *Suite, w io.Writer) {
	o := s.Options()
	tab := stats.NewTable("Table II: workload characteristics",
		"Workload", "Class", "Paper MPKI", "Measured MPKI", "Paper footprint GB", "Scaled footprint MB")
	for _, spec := range s.benchmarks() {
		st := workload.NewStream(spec, o.ScaleDiv, 0, o.Seed)
		var instr uint64
		demands := 0
		for demands < 20000 {
			r := st.Next()
			if r.Write {
				continue
			}
			instr += r.Gap
			demands++
		}
		measured := float64(demands) * 1000 / float64(instr)
		tab.AddRowF(spec.Name, spec.Class.String(), spec.MPKI, measured,
			float64(spec.FootprintBytes)/float64(1<<30),
			float64(spec.FootprintBytes/o.ScaleDiv)/float64(1<<20))
	}
	tab.Render(w)
}

// PlanTable3 declares Table3's grid: every benchmark under the Co-Located
// LLT with each of the three predictors (no baseline needed).
func PlanTable3(s *Suite) []runner.Job {
	return s.planConfigs([]system.Config{
		s.cameoCfg(cameo.CoLocatedLLT, cameo.SAM),
		s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP),
		s.cameoCfg(cameo.CoLocatedLLT, cameo.Perfect),
	})
}

// Table3 reproduces the five-way prediction-accuracy breakdown, aggregated
// over all benchmarks, for SAM, LLP, and the perfect predictor.
func Table3(s *Suite, w io.Writer) {
	agg := func(pred cameo.PredKind) cameo.CaseStats {
		var total cameo.CaseStats
		for _, spec := range s.benchmarks() {
			r := s.result(spec, s.cameoCfg(cameo.CoLocatedLLT, pred))
			if r.Cameo == nil {
				continue
			}
			c := r.Cameo.Cases
			total.StackedPredStacked += c.StackedPredStacked
			total.StackedPredOff += c.StackedPredOff
			total.OffPredStacked += c.OffPredStacked
			total.OffPredCorrect += c.OffPredCorrect
			total.OffPredWrongOff += c.OffPredWrongOff
		}
		return total
	}
	sam, llp, perfect := agg(cameo.SAM), agg(cameo.LLP), agg(cameo.Perfect)

	tab := stats.NewTable("Table III: accuracy of the Line Location Predictor (%)",
		"Serviced by", "Prediction", "SAM", "LLP", "Perfect")
	rows := []struct {
		serviced, predicted string
		idx                 int
	}{
		{"Stacked", "Stacked", 0},
		{"Stacked", "Off-chip", 1},
		{"Off-chip", "Stacked", 2},
		{"Off-chip", "Off-chip (OK)", 3},
		{"Off-chip", "Off-chip (Wrong)", 4},
	}
	ps, pl, pp := sam.Percent(), llp.Percent(), perfect.Percent()
	for _, r := range rows {
		tab.AddRowF(r.serviced, r.predicted, ps[r.idx], pl[r.idx], pp[r.idx])
	}
	tab.AddRowF("Overall Accuracy", "", 100*sam.Accuracy(), 100*llp.Accuracy(), 100*perfect.Accuracy())
	tab.Render(w)
}

// PlanTable4 declares Table4's grid.
func PlanTable4(s *Suite) []runner.Job { return s.planSpeedup(table4Cols(s)) }

func table4Cols(s *Suite) []column {
	return []column{
		{"Cache", s.sysConfig(system.Cache)},
		{"TLM-Stat", s.sysConfig(system.TLMStatic)},
		{"TLM-Dyn", s.sysConfig(system.TLMDynamic)},
		{"CAMEO", s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)},
	}
}

// Table4 reports per-module bandwidth (bytes moved) normalized to the
// baseline, averaged per workload class, for the Fig 13 design points.
func Table4(s *Suite, w io.Writer) {
	cols := table4Cols(s)
	tab := stats.NewTable("Table IV: bandwidth usage normalized to baseline",
		"Class", "Design", "Stacked", "Off-chip", "Storage")
	for _, class := range []workload.Class{workload.CapacityLimited, workload.LatencyLimited} {
		for _, c := range cols {
			var stk, off, sto []float64
			for _, spec := range s.benchmarks() {
				if spec.Class != class {
					continue
				}
				base := s.baseline(spec)
				r := s.result(spec, c.cfg)
				stk = append(stk, stats.Normalize(r.Stacked.Bytes(), base.OffChip.Bytes()))
				off = append(off, stats.Normalize(r.OffChip.Bytes(), base.OffChip.Bytes()))
				if base.StorageBytes() > 0 {
					sto = append(sto, stats.Normalize(r.StorageBytes(), base.StorageBytes()))
				}
			}
			if len(stk) == 0 {
				continue
			}
			storage := "n/a"
			if len(sto) > 0 {
				storage = fmt.Sprintf("%.2fx", mean(sto))
			}
			tab.AddRowF(class.String(), c.label,
				fmt.Sprintf("%.2fx", mean(stk)), fmt.Sprintf("%.2fx", mean(off)), storage)
		}
	}
	tab.Render(w)
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}
