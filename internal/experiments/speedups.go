package experiments

import (
	"io"

	"cameo/internal/cameo"
	"cameo/internal/runner"
	"cameo/internal/system"
)

// Fig2 reproduces the motivation chart: stacked DRAM as hardware cache,
// TLM-Static, TLM-Dynamic, and the idealistic DoubleUse, normalized to the
// no-stacked baseline.
func Fig2(s *Suite, w io.Writer) {
	s.speedupTable("Figure 2: speedup of stacked-DRAM design points", fig2Cols(s), w)
}

// PlanFig2 declares Fig2's grid.
func PlanFig2(s *Suite) []runner.Job { return s.planSpeedup(fig2Cols(s)) }

func fig2Cols(s *Suite) []column {
	return []column{
		{"Cache", s.sysConfig(system.Cache)},
		{"TLM-Static", s.sysConfig(system.TLMStatic)},
		{"TLM-Dynamic", s.sysConfig(system.TLMDynamic)},
		{"DoubleUse", s.sysConfig(system.DoubleUse)},
	}
}

// Fig9 compares the three implementable LLT designs. The Co-Located point
// uses serial access (SAM) — prediction is Section V's follow-on step.
func Fig9(s *Suite, w io.Writer) {
	s.speedupTable("Figure 9: speedup of LLT designs (serial access)", fig9Cols(s), w)
}

// PlanFig9 declares Fig9's grid.
func PlanFig9(s *Suite) []runner.Job { return s.planSpeedup(fig9Cols(s)) }

func fig9Cols(s *Suite) []column {
	return []column{
		{"Embedded-LLT", s.cameoCfg(cameo.EmbeddedLLT, cameo.SAM)},
		{"CoLocated-LLT", s.cameoCfg(cameo.CoLocatedLLT, cameo.SAM)},
		{"Ideal-LLT", s.cameoCfg(cameo.IdealLLT, cameo.SAM)},
	}
}

// Fig12 compares prediction schemes over the Co-Located LLT.
func Fig12(s *Suite, w io.Writer) {
	s.speedupTable("Figure 12: speedup with location prediction", fig12Cols(s), w)
}

// PlanFig12 declares Fig12's grid.
func PlanFig12(s *Suite) []runner.Job { return s.planSpeedup(fig12Cols(s)) }

func fig12Cols(s *Suite) []column {
	return []column{
		{"NoPred(SAM)", s.cameoCfg(cameo.CoLocatedLLT, cameo.SAM)},
		{"LLP", s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)},
		{"Perfect", s.cameoCfg(cameo.CoLocatedLLT, cameo.Perfect)},
	}
}

// Fig13 is the headline result: all design points plus CAMEO.
func Fig13(s *Suite, w io.Writer) {
	s.speedupTable("Figure 13: speedup with 4GB stacked memory", fig13Cols(s), w)
}

// PlanFig13 declares Fig13's grid.
func PlanFig13(s *Suite) []runner.Job { return s.planSpeedup(fig13Cols(s)) }

func fig13Cols(s *Suite) []column {
	return []column{
		{"Cache", s.sysConfig(system.Cache)},
		{"TLM-Static", s.sysConfig(system.TLMStatic)},
		{"TLM-Dynamic", s.sysConfig(system.TLMDynamic)},
		{"CAMEO", s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)},
		{"DoubleUse", s.sysConfig(system.DoubleUse)},
	}
}

// Fig15 compares CAMEO against the optimized page-placement TLM schemes.
func Fig15(s *Suite, w io.Writer) {
	s.speedupTable("Figure 15: optimized TLM page placement vs CAMEO", fig15Cols(s), w)
}

// PlanFig15 declares Fig15's grid.
func PlanFig15(s *Suite) []runner.Job { return s.planSpeedup(fig15Cols(s)) }

func fig15Cols(s *Suite) []column {
	return []column{
		{"TLM-Dynamic", s.sysConfig(system.TLMDynamic)},
		{"TLM-Freq", s.sysConfig(system.TLMFreq)},
		{"TLM-Oracle", s.sysConfig(system.TLMOracle)},
		{"CAMEO", s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)},
	}
}
