package experiments

import (
	"io"

	"cameo/internal/cameo"
	"cameo/internal/system"
)

// Fig2 reproduces the motivation chart: stacked DRAM as hardware cache,
// TLM-Static, TLM-Dynamic, and the idealistic DoubleUse, normalized to the
// no-stacked baseline.
func Fig2(s *Suite, w io.Writer) {
	s.speedupTable("Figure 2: speedup of stacked-DRAM design points", []column{
		{"Cache", s.sysConfig(system.Cache)},
		{"TLM-Static", s.sysConfig(system.TLMStatic)},
		{"TLM-Dynamic", s.sysConfig(system.TLMDynamic)},
		{"DoubleUse", s.sysConfig(system.DoubleUse)},
	}, w)
}

// Fig9 compares the three implementable LLT designs. The Co-Located point
// uses serial access (SAM) — prediction is Section V's follow-on step.
func Fig9(s *Suite, w io.Writer) {
	s.speedupTable("Figure 9: speedup of LLT designs (serial access)", []column{
		{"Embedded-LLT", s.cameoCfg(cameo.EmbeddedLLT, cameo.SAM)},
		{"CoLocated-LLT", s.cameoCfg(cameo.CoLocatedLLT, cameo.SAM)},
		{"Ideal-LLT", s.cameoCfg(cameo.IdealLLT, cameo.SAM)},
	}, w)
}

// Fig12 compares prediction schemes over the Co-Located LLT.
func Fig12(s *Suite, w io.Writer) {
	s.speedupTable("Figure 12: speedup with location prediction", []column{
		{"NoPred(SAM)", s.cameoCfg(cameo.CoLocatedLLT, cameo.SAM)},
		{"LLP", s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)},
		{"Perfect", s.cameoCfg(cameo.CoLocatedLLT, cameo.Perfect)},
	}, w)
}

// Fig13 is the headline result: all design points plus CAMEO.
func Fig13(s *Suite, w io.Writer) {
	s.speedupTable("Figure 13: speedup with 4GB stacked memory", []column{
		{"Cache", s.sysConfig(system.Cache)},
		{"TLM-Static", s.sysConfig(system.TLMStatic)},
		{"TLM-Dynamic", s.sysConfig(system.TLMDynamic)},
		{"CAMEO", s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)},
		{"DoubleUse", s.sysConfig(system.DoubleUse)},
	}, w)
}

// Fig15 compares CAMEO against the optimized page-placement TLM schemes.
func Fig15(s *Suite, w io.Writer) {
	s.speedupTable("Figure 15: optimized TLM page placement vs CAMEO", []column{
		{"TLM-Dynamic", s.sysConfig(system.TLMDynamic)},
		{"TLM-Freq", s.sysConfig(system.TLMFreq)},
		{"TLM-Oracle", s.sysConfig(system.TLMOracle)},
		{"CAMEO", s.cameoCfg(cameo.CoLocatedLLT, cameo.LLP)},
	}, w)
}
