package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden experiment outputs")

// TestGoldenOutputs locks the exact text of representative experiments at a
// fixed tiny operating point: any unintended change to the simulator, the
// workload generators, or the RNG shows up as a diff. Regenerate after
// *intended* changes with:
//
//	go test ./internal/experiments -run TestGolden -update
func TestGoldenOutputs(t *testing.T) {
	suiteFor := func() *Suite {
		return MustNewSuite(Options{
			ScaleDiv:     4096,
			Cores:        4,
			InstrPerCore: 40_000,
			Seed:         7,
			Benchmarks:   []string{"sphinx3", "milc"},
		})
	}
	for _, id := range []string{"fig8", "fig13", "table3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			var b strings.Builder
			e.Run(suiteFor(), &b)
			got := b.String()

			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file missing (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
					id, got, want)
			}
		})
	}
}
