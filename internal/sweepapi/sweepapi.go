// Package sweepapi is the wire schema of the sweep service: the request,
// response, and readiness types cameod serves and the coordinator speaks,
// plus the grid builder that turns a request into concrete runner jobs.
//
// It exists as its own package so both internal/server (the single-node
// worker) and internal/fleet (the coordinator) can share one schema and one
// grid construction — the coordinator must derive exactly the cell keys,
// tags, and ordering a worker would, or the fleet's merged report could
// never be byte-identical to a single-node run.
package sweepapi

import (
	"errors"
	"fmt"
	"strings"

	"cameo/internal/runner"
	"cameo/internal/system"
	"cameo/internal/workload"
)

// Request is the POST /sweep body. Org/Benchmarks use the CLI spellings;
// Sweep/Values mirror cameo-sweep's dimensions.
type Request struct {
	Org        string   `json:"org"`
	Benchmarks []string `json:"benchmarks"`
	// Sweep is the swept dimension: scale, cores, ratio, seed, or an
	// organization-specific dimension from system.SweepDims. Empty with no
	// Values runs one cell per benchmark at the defaults.
	Sweep  string   `json:"sweep,omitempty"`
	Values []uint64 `json:"values,omitempty"`
	Instr  uint64   `json:"instr,omitempty"`
	Cores  int      `json:"cores,omitempty"`
	Scale  uint64   `json:"scale,omitempty"`
	Seed   uint64   `json:"seed,omitempty"`
	// Shards selects the group-sharded execution mode with this many lane
	// workers (0 = sequential engine). Results are byte-identical at every
	// nonzero value; the organization must declare shardable state.
	Shards int `json:"shards,omitempty"`
	// TimeoutMS bounds the whole request; on expiry the sweep is cancelled
	// mid-flight (not abandoned) and the request answers 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Cell is one grid cell of the response, in request order.
type Cell struct {
	Benchmark     string  `json:"benchmark"`
	Org           string  `json:"org"`
	Cycles        uint64  `json:"cycles"`
	Instructions  uint64  `json:"instructions"`
	Demands       uint64  `json:"demands"`
	AvgMemLatency float64 `json:"avg_mem_latency"`
	LatencyP95    uint64  `json:"latency_p95"`
}

// Response is the POST /sweep reply. Failures lists cells quarantined by
// the runner's keep-going mode; Cells still contains every cell that
// completed.
type Response struct {
	Org      string               `json:"org"`
	Cells    []Cell               `json:"cells"`
	Failures []runner.CellFailure `json:"failures,omitempty"`
}

// ReadyState is the GET /readyz JSON body: enough admission detail for a
// coordinator to make placement decisions, not just a 200/503 bit.
type ReadyState struct {
	Ready       bool `json:"ready"`
	Draining    bool `json:"draining"`
	Inflight    int  `json:"inflight"`
	MaxInflight int  `json:"max_inflight"`
	Queued      int  `json:"queued"`
	MaxQueue    int  `json:"max_queue"`
}

// FreeSlots returns how many sweep requests the worker could admit right
// now without queueing (0 when draining or saturated).
func (rs ReadyState) FreeSlots() int {
	if !rs.Ready || rs.Draining {
		return 0
	}
	if free := rs.MaxInflight - rs.Inflight; free > 0 {
		return free
	}
	return 0
}

// JoinRequest is the POST /fleet/join body a worker sends a coordinator to
// register (or re-register) at runtime. Worker is the worker's own base
// URL as reachable by the coordinator and its peers.
type JoinRequest struct {
	Worker string `json:"worker"`
}

// JoinResponse acknowledges a join. Status is "joined" for a first
// registration, "rejoined" for a previously-dead worker re-admitted, and
// "already-member" for an idempotent re-announcement.
type JoinResponse struct {
	Status string `json:"status"`
}

// PeerInfo is one member's entry in a gossiped fleet view: the member's
// advertised base URL, its observed state ("alive", "suspect", or "dead"),
// and its incarnation number. Incarnations implement SWIM-style refutation:
// only the member itself ever bumps its own incarnation, so an `alive`
// entry at incarnation i+1 supersedes a `dead` rumor at incarnation i —
// the one mechanism that lets a falsely-accused worker overrule the fleet.
type PeerInfo struct {
	URL         string `json:"url"`
	State       string `json:"state"`
	Incarnation uint64 `json:"incarnation"`
}

// GossipRequest is the POST /fleet/gossip body: the sender's full versioned
// view, push-pull style. From is the sender's own advertise URL so the
// receiver can adopt a previously-unknown sender into its view; Observer
// marks a sender (a coordinator or standby) that monitors the fleet but is
// not itself a cache peer — receivers merge its view without adopting it.
type GossipRequest struct {
	From     string     `json:"from"`
	Observer bool       `json:"observer,omitempty"`
	View     []PeerInfo `json:"view"`
}

// GossipResponse completes the push-pull exchange: the receiver's merged
// view, which the sender merges in turn. Two exchanges therefore leave both
// sides with the union of what either knew.
type GossipResponse struct {
	View []PeerInfo `json:"view"`
}

// WarmRequest is the POST /cache/warm body the coordinator pushes to a
// joining worker: the cache hashes of the cells the ring just moved to it,
// plus the peer base URLs that may already hold those entries. The worker
// pre-fetches each missing hash from the peers (GET /cache/<hash>,
// verify-on-read) before any of those cells is dispatched, so a re-joined
// worker recomputes nothing the fleet already computed.
type WarmRequest struct {
	Hashes []string `json:"hashes"`
	Peers  []string `json:"peers,omitempty"`
}

// WarmResponse reports the prefetch outcome: Hits entries now local (held
// already or fetched and verified), Misses nowhere to be found (those
// cells will compute on dispatch — correct, just colder).
type WarmResponse struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
}

// CellSpec identifies one request-order grid cell by its swept coordinates
// — the information needed to re-express that single cell as its own
// Request (the coordinator's dispatch unit).
type CellSpec struct {
	// Benchmark is the workload name (without the @sweep=value tag).
	Benchmark string
	// Value is the swept value for this cell; meaningless when the grid has
	// no swept dimension (HasValue false).
	Value    uint64
	HasValue bool
}

// Grid is a request expanded into concrete cells, all three slices in
// request order (benchmarks outer, values inner) and index-aligned.
type Grid struct {
	// Jobs are the runner cells; Jobs[i].Key() is the canonical cell key
	// the ring shards on and Jobs[i].Hash() the cache/checkpoint identity.
	Jobs []runner.Job
	// Tags are the human-facing cell labels ("milc@seed=7") the response
	// grid reports, in request order.
	Tags []string
	// Cells are the swept coordinates of each job, for per-cell dispatch.
	Cells []CellSpec
}

// BuildGrid turns a request into the job grid. maxCells caps the grid size
// (<=0 means 1024, matching the server default). The expansion is the
// single source of truth for cell identity: server and coordinator both
// call it, so a cell's key, tag, and position agree fleet-wide.
func BuildGrid(req Request, maxCells int) (*Grid, error) {
	if maxCells <= 0 {
		maxCells = 1024
	}
	kind, ok := system.ParseOrg(req.Org)
	if !ok {
		return nil, fmt.Errorf("unknown organization %q (have: %s)",
			req.Org, strings.Join(system.OrgNames(), ", "))
	}
	if len(req.Benchmarks) == 0 {
		return nil, errors.New("no benchmarks given")
	}
	values := req.Values
	sweep := req.Sweep
	hasValues := true
	if len(values) == 0 {
		if sweep != "" {
			return nil, fmt.Errorf("sweep %q with no values", sweep)
		}
		values = []uint64{0} // one cell per benchmark at the defaults
		sweep = "none"
		hasValues = false
	} else if sweep == "" {
		return nil, errors.New("values given with no sweep dimension")
	}
	if n := len(req.Benchmarks) * len(values); n > maxCells {
		return nil, fmt.Errorf("%d cells exceeds the per-request cap of %d", n, maxCells)
	}

	g := &Grid{}
	for _, bn := range req.Benchmarks {
		spec, ok := workload.SpecByName(strings.TrimSpace(bn))
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bn)
		}
		for _, v := range values {
			cfg := system.Config{
				Org:          kind,
				ScaleDiv:     req.Scale,
				Cores:        req.Cores,
				InstrPerCore: req.Instr,
				Seed:         req.Seed,
				Shards:       req.Shards,
			}
			if cfg.ScaleDiv == 0 {
				cfg.ScaleDiv = 1024
			}
			if cfg.InstrPerCore == 0 {
				cfg.InstrPerCore = 300_000
			}
			if cfg.Cores == 0 {
				cfg.Cores = 16
			}
			tag := spec.Name
			if sweep != "none" {
				if err := system.ApplySweep(&cfg, sweep, v); err != nil {
					return nil, err
				}
				tag = fmt.Sprintf("%s@%s=%d", spec.Name, sweep, v)
			}
			g.Jobs = append(g.Jobs, runner.NewJob(spec, cfg))
			g.Tags = append(g.Tags, tag)
			g.Cells = append(g.Cells, CellSpec{Benchmark: spec.Name, Value: v, HasValue: hasValues})
		}
	}
	return g, nil
}

// CellRequest re-expresses one grid cell of req as a standalone single-cell
// request — the coordinator's dispatch unit. The worker expanding it with
// BuildGrid produces exactly the same job key, hash, and tag the
// coordinator derived, so caches, checkpoints, and report rows line up.
// TimeoutMS is cleared: the coordinator owns the sweep deadline and
// propagates it per dispatch.
func CellRequest(req Request, spec CellSpec) Request {
	out := req
	out.Benchmarks = []string{spec.Benchmark}
	out.TimeoutMS = 0
	if spec.HasValue {
		out.Values = []uint64{spec.Value}
	} else {
		out.Sweep = ""
		out.Values = nil
	}
	return out
}
