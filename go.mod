module cameo

go 1.22
