package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOut = `
goos: linux
BenchmarkControllerAccess-4   5000000   230.0 ns/op   0 B/op   0 allocs/op
BenchmarkControllerAccess-4   5000000   232.0 ns/op   0 B/op   0 allocs/op
BenchmarkControllerAccess-4   5000000   231.0 ns/op   0 B/op   0 allocs/op
BenchmarkCAMEOAccess-4        2000000   514.0 ns/op   0 B/op   0 allocs/op
BenchmarkOldOnly-4            1000000   100.0 ns/op
PASS
`

func writeFiles(t *testing.T, head string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	bp := filepath.Join(dir, "base.txt")
	hp := filepath.Join(dir, "head.txt")
	if err := os.WriteFile(bp, []byte(baseOut), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(hp, []byte(head), 0o644); err != nil {
		t.Fatal(err)
	}
	return bp, hp
}

func TestGatePassesWithinTolerance(t *testing.T) {
	head := `
BenchmarkControllerAccess-8   5000000   235.0 ns/op   0 B/op   0 allocs/op
BenchmarkCAMEOAccess-8        2000000   470.0 ns/op   0 B/op   0 allocs/op
BenchmarkNewOnly-8            1000000    50.0 ns/op   0 B/op   0 allocs/op
`
	bp, hp := writeFiles(t, head)
	if code := run([]string{"-base", bp, "-head", hp}); code != 0 {
		t.Fatalf("gate failed on a within-tolerance run (code %d)", code)
	}
}

func TestGateFailsOnTimeRegression(t *testing.T) {
	head := `
BenchmarkControllerAccess-4   5000000   260.0 ns/op   0 B/op   0 allocs/op
BenchmarkCAMEOAccess-4        2000000   514.0 ns/op   0 B/op   0 allocs/op
`
	bp, hp := writeFiles(t, head)
	if code := run([]string{"-base", bp, "-head", hp, "-max-time-pct", "5"}); code != 1 {
		t.Fatalf("gate passed a 13%% time regression (code %d)", code)
	}
}

func TestGateFailsOnAnyAllocRegression(t *testing.T) {
	// 1 alloc/op where base had 0: time is fine, allocs are not.
	head := `
BenchmarkControllerAccess-4   5000000   230.0 ns/op   16 B/op   1 allocs/op
BenchmarkCAMEOAccess-4        2000000   514.0 ns/op   0 B/op   0 allocs/op
`
	bp, hp := writeFiles(t, head)
	if code := run([]string{"-base", bp, "-head", hp}); code != 1 {
		t.Fatalf("gate passed an alloc/op regression (code %d)", code)
	}
}

func TestCompareMedianResistsOneNoisySample(t *testing.T) {
	base, err := parseFile(writeOne(t, `
BenchmarkX-4  100  100.0 ns/op
BenchmarkX-4  100  101.0 ns/op
BenchmarkX-4  100  102.0 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	head, err := parseFile(writeOne(t, `
BenchmarkX-4  100  500.0 ns/op
BenchmarkX-4  100  101.0 ns/op
BenchmarkX-4  100  100.0 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	report, failed := compare(base, head, 5)
	if failed {
		t.Fatalf("median gate tripped on a single outlier:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkX") {
		t.Fatalf("report missing benchmark row:\n%s", report)
	}
}

func writeOne(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "out.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}
