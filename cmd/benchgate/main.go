// Command benchgate compares two `go test -bench` output files — a base run
// and a head run of the same benchmarks — and fails when the head regresses:
// more than -max-time-pct percent on median time/op, or any increase at all
// in allocs/op (the hot paths are allocation-free by design, so a single new
// allocation per op is a real defect, not noise).
//
// CI runs it between the PR head and its merge base:
//
//	benchgate -base base.txt -head head.txt -max-time-pct 5
//
// The verdict table goes to stdout; benchmarks present on only one side are
// reported but never fatal (added or removed benchmarks are fine).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		basePath = fs.String("base", "", "benchmark output of the base commit")
		headPath = fs.String("head", "", "benchmark output of the head commit")
		maxPct   = fs.Float64("max-time-pct", 5, "fail when median time/op regresses more than this percent")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		return 2
	}
	base, err := parseFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return 2
	}
	head, err := parseFile(*headPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return 2
	}
	report, failed := compare(base, head, *maxPct)
	fmt.Print(report)
	if failed {
		return 1
	}
	return 0
}

// bench accumulates every measured iteration of one benchmark name.
type bench struct {
	nsPerOp     []float64
	allocsPerOp []float64
}

// parseFile reads `go test -bench` output: lines of the form
//
//	BenchmarkName-8   1000   1234 ns/op   16 B/op   2 allocs/op
//
// keyed by name with the -GOMAXPROCS suffix stripped, so base and head runs
// on differently sized machines still line up.
func parseFile(path string) (map[string]*bench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*bench)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := out[name]
		if b == nil {
			b = &bench{}
			out[name] = b
		}
		// fields[1] is the iteration count; after it come (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.nsPerOp = append(b.nsPerOp, v)
			case "allocs/op":
				b.allocsPerOp = append(b.allocsPerOp, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines", path)
	}
	return out, nil
}

// median of a non-empty sample set; benchstat's choice, robust to one noisy
// CI run in a -count series.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare renders the verdict table and reports whether any gate tripped.
func compare(base, head map[string]*bench, maxPct float64) (string, bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	failed := false
	fmt.Fprintf(&sb, "%-40s %12s %12s %8s\n", "benchmark", "base ns/op", "head ns/op", "delta")
	for _, name := range names {
		b, h := base[name], head[name]
		if h == nil {
			fmt.Fprintf(&sb, "%-40s removed in head (not gated)\n", name)
			continue
		}
		if len(b.nsPerOp) > 0 && len(h.nsPerOp) > 0 {
			bt, ht := median(b.nsPerOp), median(h.nsPerOp)
			delta := 100 * (ht - bt) / bt
			verdict := ""
			if delta > maxPct {
				verdict = fmt.Sprintf("  FAIL: time/op regressed %.1f%% (limit %.1f%%)", delta, maxPct)
				failed = true
			}
			fmt.Fprintf(&sb, "%-40s %12.1f %12.1f %+7.1f%%%s\n", name, bt, ht, delta, verdict)
		}
		if len(b.allocsPerOp) > 0 && len(h.allocsPerOp) > 0 {
			ba, ha := median(b.allocsPerOp), median(h.allocsPerOp)
			if ha > ba {
				fmt.Fprintf(&sb, "%-40s FAIL: allocs/op %.0f -> %.0f (any increase fails)\n", name, ba, ha)
				failed = true
			}
		}
	}
	for name := range head {
		if base[name] == nil {
			fmt.Fprintf(&sb, "%-40s new in head (not gated)\n", name)
		}
	}
	if failed {
		sb.WriteString("\nbenchgate: FAIL\n")
	} else {
		sb.WriteString("\nbenchgate: ok\n")
	}
	return sb.String(), failed
}
