// Command tracegen captures synthetic benchmark streams as binary trace
// files and inspects existing traces — the reproduction's stand-in for the
// paper's Pin-based capture step.
//
// Usage:
//
//	tracegen -bench milc -out milc.camt -requests 1000000
//	tracegen -info milc.camt
//	tracegen -replay milc.camt            # replay against a CAMEO system
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cameo/internal/cameo"
	"cameo/internal/dram"
	"cameo/internal/memsys"
	"cameo/internal/trace"
	"cameo/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "", "benchmark to capture")
		out      = flag.String("out", "", "output trace path")
		requests = flag.Int("requests", 1_000_000, "records to capture")
		scale    = flag.Uint64("scale", 1024, "capacity scale divisor")
		core     = flag.Int("core", 0, "core id (stream seed)")
		seed     = flag.Uint64("seed", 0xCA3E0, "base seed")
		info     = flag.String("info", "", "print a trace's header and stats")
		replay   = flag.String("replay", "", "replay a trace against a small CAMEO system")
	)
	flag.Parse()

	switch {
	case *info != "":
		if err := printInfo(*info); err != nil {
			fail(err)
		}
	case *replay != "":
		if err := replayTrace(*replay); err != nil {
			fail(err)
		}
	case *bench != "" && *out != "":
		if err := capture(*bench, *out, *requests, *scale, *core, *seed); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func capture(bench, out string, requests int, scale uint64, core int, seed uint64) error {
	spec, ok := workload.SpecByName(bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", bench)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, trace.Meta{
		Benchmark: bench, ScaleDiv: scale, Core: core, Seed: seed,
	})
	if err != nil {
		return err
	}
	s := workload.NewStream(spec, scale, core, seed)
	for i := 0; i < requests; i++ {
		if err := w.Write(s.Next()); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d records (%d bytes, %.1f B/record) to %s\n",
		w.Count(), st.Size(), float64(st.Size())/float64(w.Count()), out)
	return nil
}

func printInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	m := r.Meta()
	fmt.Printf("benchmark: %s  scale: 1/%d  core: %d  seed: %#x\n",
		m.Benchmark, m.ScaleDiv, m.Core, m.Seed)
	var records, writes, instr uint64
	minL, maxL := ^uint64(0), uint64(0)
	for {
		req, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		records++
		if req.Write {
			writes++
			continue
		}
		instr += req.Gap
		if req.VLine < minL {
			minL = req.VLine
		}
		if req.VLine > maxL {
			maxL = req.VLine
		}
	}
	fmt.Printf("records: %d (%d writebacks)\n", records, writes)
	if instr > 0 {
		fmt.Printf("instructions: %d (MPKI %.1f)\n", instr,
			float64(records-writes)*1000/float64(instr))
	}
	fmt.Printf("line range: [%d, %d] (%.1f MB span)\n", minL, maxL,
		float64(maxL-minL)*64/(1<<20))
	return nil
}

func replayTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	src, err := trace.NewLoopingSource(r)
	if err != nil {
		return err
	}
	// A small CAMEO target sized like the default experiments.
	stacked := dram.NewModule(dram.StackedConfig(4 << 20))
	off := dram.NewModule(dram.OffChipConfig(12 << 20))
	groups := cameo.VisibleStackedLines((4 << 20) / dram.LineBytes)
	sys := cameo.New(cameo.Config{
		Groups: groups, Segments: 4,
		LLT: cameo.CoLocatedLLT, Pred: cameo.LLP,
		Cores: 1, LLPEntries: 256,
	}, stacked, off)
	space := sys.VisibleLines()

	at := uint64(0)
	for i := 0; i < src.Len(); i++ {
		req := src.Next()
		sys.Access(at, memsys.Request{
			Core:  0,
			PLine: req.VLine % space,
			PC:    req.PC,
			Write: req.Write,
		})
		at += 2 * req.Gap // IPC 2 pacing, uncontended replay
	}
	st := sys.Stats()
	fmt.Printf("replayed %d records: stacked service %.1f%%, %d swaps, LLP accuracy %.1f%%\n",
		src.Len(), 100*st.StackedServiceRate(), st.Swaps, 100*st.Cases.Accuracy())
	return nil
}
