// Command cameod is the long-running sweep service: an HTTP front end over
// the parallel runner for shared or remote use, hardened for continuous
// operation.
//
// Endpoints:
//
//	POST /sweep    run a sweep; JSON body {"org","benchmarks","sweep","values",
//	               "instr","cores","seed","timeout_ms"}; cells return in
//	               request order. 400 invalid request, 429 saturated (honour
//	               Retry-After), 503 draining, 504 request deadline hit.
//	GET  /healthz  liveness: 200 while the process serves, even during drain.
//	GET  /readyz   admission readiness: a JSON body with in-flight slots,
//	               queue depth and drain state; 503 once draining begins.
//	GET  /metrics  server counters/gauges as deterministic JSON.
//	GET/PUT /cache/<hash>  the fleet cache-peer protocol: checksummed
//	               cameo-cache-entry-v1 envelopes, verified on both ends
//	               (requires -cachedir).
//
// A request's timeout_ms (and a disconnecting client) cancels its sweep
// mid-flight: the cancellation reaches the simulator's event loops, which
// unwind at their preemption points, and the workers are reclaimed.
//
// Fleet mode: with -peers, a worker consults the listed peer caches before
// recomputing a cell (and serves POST /cache/warm so a coordinator can ask
// it to pre-fetch a batch of entries from those peers). With -coordinator
// -workers=..., cameod serves the same /sweep contract but shards cells
// across the workers by consistent hashing, work-steals stragglers, and
// re-shards the cells of lost workers — see internal/fleet. With -heartbeat
// the coordinator runs the suspicion-based failure detector
// (alive→suspect→dead, tuned by -suspect-misses/-dead-misses) and serves
// POST /fleet/join for runtime registration; a worker started with
// -join <coordinator> announces itself there and re-joins automatically
// after a crash. -chaos/-chaos-seed inject deterministic transport faults
// (drop, latency, error5xx, partition) at the fleet/dispatch,
// fleet/heartbeat, and fleet/cachefetch sites for replayable drills.
//
// On SIGTERM/SIGINT cameod drains: it stops admitting (readyz flips to
// 503), lets in-flight sweeps finish within -drain-grace, force-cancels any
// stragglers, flushes the -cachedir result cache, and exits 0. A second
// signal aborts immediately with exit 130. Exit codes: 0 clean (including
// drained), 1 runtime failure (including an unusable listen address), 2 bad
// flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"cameo/internal/faultinject"
	"cameo/internal/fleet"
	"cameo/internal/runner"
	"cameo/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("cameod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8347", "listen address")
		jobs        = fs.Int("jobs", runtime.GOMAXPROCS(0), "simulation workers per sweep")
		maxInflight = fs.Int("max-inflight", 2, "sweep requests executing concurrently")
		maxQueue    = fs.Int("max-queue", 8, "sweep requests allowed to wait for a slot (beyond that: 429)")
		maxCells    = fs.Int("max-cells", 1024, "largest grid a single request may ask for")
		jobTimeout  = fs.Duration("job-timeout", 0, "per-cell watchdog: cancel an attempt running longer than this and reclaim its worker (0 = off)")
		retries     = fs.Int("retries", 0, "retry transiently-failed cells this many times")
		cachedir    = fs.String("cachedir", "", "persistent result-cache directory shared across requests and restarts (coordinator mode: checkpoint-manifest directory)")
		drainGrace  = fs.Duration("drain-grace", 30*time.Second, "how long a drain waits for in-flight sweeps before cancelling them")
		peers       = fs.String("peers", "", "comma-separated peer worker base URLs whose caches are consulted before recomputing (needs -cachedir)")
		coordinator = fs.Bool("coordinator", false, "serve as fleet coordinator: shard sweeps across -workers instead of simulating locally")
		workers     = fs.String("workers", "", "comma-separated worker base URLs the coordinator shards across")
		vnodes      = fs.Int("vnodes", 0, "virtual nodes per worker on the hash ring (0 = default)")
		resume      = fs.Bool("resume", false, "coordinator mode: resume an interrupted sweep from the manifest in -cachedir")

		join          = fs.String("join", "", "worker mode: coordinator base URL to register with at startup (and keep re-announcing to)")
		advertise     = fs.String("advertise", "", "this node's own base URL as reachable by the coordinator and peers (default http://<addr>)")
		standby       = fs.String("standby", "", "standby coordinator mode: monitor this primary coordinator URL and take over its sweep (from the shared -cachedir manifest) when its death is confirmed")
		gossipEvery   = fs.Duration("gossip-interval", 0, "anti-entropy gossip cadence: exchange the versioned fleet membership view with a random peer this often (0 = off)")
		leaseTTL      = fs.Duration("lease-ttl", 30*time.Second, "coordinator mode: cell dispatch lease duration recorded in the manifest; expired leases make cells safely re-dispatchable (0 = leasing off)")
		heartbeat     = fs.Duration("heartbeat", 0, "coordinator mode: probe worker liveness at this cadence and run the suspicion-based failure detector (0 = off: a failed dispatch plus a failed probe kills a worker immediately); worker mode with -join: re-announce cadence")
		suspectMisses = fs.Int("suspect-misses", 0, "coordinator mode: consecutive heartbeat misses before a worker turns suspect (0 = default 2)")
		deadMisses    = fs.Int("dead-misses", 0, "coordinator mode: total consecutive misses before a suspect is declared dead and re-sharded (0 = default: suspect-misses+4)")
		chaos         = fs.String("chaos", "", "comma-separated deterministic fault rules injected under fleet transport (site:kind[:opt=v]...; sites fleet/dispatch, fleet/heartbeat, fleet/cachefetch; kinds drop, latency, error5xx, partition)")
		chaosSeed     = fs.Uint64("chaos-seed", 1, "seed for the -chaos fault plan (same seed + same traffic = same faults)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := log.New(stderr, "cameod: ", log.LstdFlags)

	var chaosPlan *faultinject.Plan
	if *chaos != "" {
		plan, err := faultinject.ParseSpec(*chaosSeed, *chaos)
		if err != nil {
			logger.Print(err)
			return 2
		}
		chaosPlan = plan
		logger.Printf("chaos: injecting %q (seed %d)", *chaos, *chaosSeed)
	}

	// Listen before building anything else: a busy or malformed address is
	// the most common operational error, and it must fail with one clear
	// line, not a panic or a goroutine's log.Fatal.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("cannot listen on %s: %v", *addr, err)
		return 1
	}

	self := *advertise
	if self == "" {
		self = "http://" + ln.Addr().String()
	}

	var handler http.Handler
	drain := func() error { return nil }
	switch {
	case *standby != "":
		if *coordinator {
			logger.Print("-standby already implies the coordinator role; drop -coordinator")
			ln.Close()
			return 2
		}
		if *join != "" {
			logger.Print("-join is a worker flag: a standby coordinator is joined, it does not join")
			ln.Close()
			return 2
		}
		if *cachedir == "" {
			logger.Print("-standby needs -cachedir shared with the primary: the checkpoint manifest is the takeover handoff channel")
			ln.Close()
			return 2
		}
		st, err := fleet.NewStandby(fleet.StandbyOptions{
			Primary: *standby,
			Coordinator: fleet.CoordinatorOptions{
				Workers:           splitList(*workers),
				VNodes:            *vnodes,
				MaxCells:          *maxCells,
				CheckpointDir:     *cachedir,
				HeartbeatInterval: *heartbeat,
				SuspectMisses:     *suspectMisses,
				DeadMisses:        *deadMisses,
				Chaos:             chaosPlan,
				ChaosSeed:         *chaosSeed,
				LeaseTTL:          *leaseTTL,
				Advertise:         self,
				GossipInterval:    *gossipEvery,
				Log:               logger,
			},
			Interval:      *heartbeat,
			SuspectMisses: *suspectMisses,
			DeadMisses:    *deadMisses,
			Log:           logger,
		})
		if err != nil {
			logger.Print(err)
			ln.Close()
			return 1
		}
		defer st.Close()
		stCtx, stCancel := context.WithCancel(context.Background())
		defer stCancel()
		go st.Run(stCtx)
		handler = st.Handler()
		logger.Printf("standing by for coordinator %s (takeover from manifest in %s)", *standby, *cachedir)
	case *coordinator:
		if *workers == "" {
			logger.Print("-coordinator needs -workers (the fleet to shard across)")
			ln.Close()
			return 2
		}
		if *join != "" {
			logger.Print("-join is a worker flag: a coordinator is joined, it does not join")
			ln.Close()
			return 2
		}
		co, err := fleet.NewCoordinator(fleet.CoordinatorOptions{
			Workers:           splitList(*workers),
			VNodes:            *vnodes,
			MaxCells:          *maxCells,
			CheckpointDir:     *cachedir,
			Resume:            *resume,
			HeartbeatInterval: *heartbeat,
			SuspectMisses:     *suspectMisses,
			DeadMisses:        *deadMisses,
			Chaos:             chaosPlan,
			ChaosSeed:         *chaosSeed,
			LeaseTTL:          *leaseTTL,
			Advertise:         self,
			GossipInterval:    *gossipEvery,
			Log:               logger,
		})
		if err != nil {
			logger.Print(err)
			ln.Close()
			return 1
		}
		defer co.Close()
		handler = co.Handler()
		if *heartbeat > 0 {
			logger.Printf("coordinating %d workers (failure detector on, heartbeat %s)", len(splitList(*workers)), *heartbeat)
		} else {
			logger.Printf("coordinating %d workers", len(splitList(*workers)))
		}
	default:
		opts := server.Options{
			Jobs:        *jobs,
			MaxInflight: *maxInflight,
			MaxQueue:    *maxQueue,
			MaxCells:    *maxCells,
			JobTimeout:  *jobTimeout,
			Retries:     *retries,
			CacheDir:    *cachedir,
			DrainGrace:  *drainGrace,
			Log:         logger,
		}
		var tier *fleet.PeerTier
		if *peers != "" {
			if *cachedir == "" {
				logger.Print("-peers needs -cachedir: the peer protocol serves and adopts entries through the local disk cache")
				ln.Close()
				return 2
			}
			disk, err := runner.OpenDiskCache(*cachedir)
			if err != nil {
				logger.Print(err)
				ln.Close()
				return 1
			}
			opts.CacheDir = ""
			opts.Disk = disk
			tier = fleet.NewPeerTier(disk, splitList(*peers), 0)
			if chaosPlan != nil {
				tier.SetChaos(chaosPlan)
			}
			opts.Cache = tier
		}
		if *gossipEvery > 0 {
			// The gossip view, not the static flag list, keeps the cache
			// tier's peer set current: a joiner anywhere in the fleet
			// becomes fetchable here within a few exchanges, and a confirmed
			// death drops out — no restarts, no coordinator brokering.
			onView := func([]string) {}
			if tier != nil {
				onView = tier.SetPeers
			}
			g := fleet.NewGossiper(fleet.GossipOptions{
				Self:     self,
				Seeds:    splitList(*peers),
				Interval: *gossipEvery,
				Seed:     *chaosSeed,
				Chaos:    chaosPlan,
				OnView:   onView,
				Log:      logger.Printf,
			})
			opts.Gossip = g
			gCtx, gCancel := context.WithCancel(context.Background())
			defer gCancel()
			go g.Run(gCtx)
			logger.Printf("gossiping membership as %s every %s", self, *gossipEvery)
		}
		srv, err := server.New(opts)
		if err != nil {
			logger.Print(err)
			ln.Close()
			return 1
		}
		handler = srv.Handler()
		drain = srv.Drain
		if *join != "" {
			// Register with the coordinator now and keep re-announcing: a
			// worker started (or restarted) mid-sweep inserts itself into
			// the ring and receives only the cells the ring moves to it.
			annCtx, annCancel := context.WithCancel(context.Background())
			defer annCancel()
			go fleet.Announce(annCtx, *join, self, *heartbeat, logger.Printf)
		}
	}

	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Printf("listening on %s (inflight %d, queue %d, %d workers/sweep)",
		ln.Addr(), *maxInflight, *maxQueue, *jobs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		logger.Print(err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default handling: a second signal kills us (exit 130)

	// Drain: admission closes first, then in-flight sweeps get the grace,
	// then the cache is flushed. The HTTP listener shuts down after the
	// handlers have finished, so Shutdown returns promptly.
	if err := drain(); err != nil {
		logger.Printf("drain: %v", err)
		return 1
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("shutdown: %v", err)
		return 1
	}
	fmt.Fprintln(stderr, "cameod: exiting after clean drain")
	return 0
}

// splitList parses a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
