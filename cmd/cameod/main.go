// Command cameod is the long-running sweep service: an HTTP front end over
// the parallel runner for shared or remote use, hardened for continuous
// operation.
//
// Endpoints:
//
//	POST /sweep    run a sweep; JSON body {"org","benchmarks","sweep","values",
//	               "instr","cores","seed","timeout_ms"}; cells return in
//	               request order. 400 invalid request, 429 saturated (honour
//	               Retry-After), 503 draining, 504 request deadline hit.
//	GET  /healthz  liveness: 200 while the process serves, even during drain.
//	GET  /readyz   admission readiness: 503 once draining begins.
//	GET  /metrics  server counters/gauges as deterministic JSON.
//
// A request's timeout_ms (and a disconnecting client) cancels its sweep
// mid-flight: the cancellation reaches the simulator's event loops, which
// unwind at their preemption points, and the workers are reclaimed.
//
// On SIGTERM/SIGINT cameod drains: it stops admitting (readyz flips to
// 503), lets in-flight sweeps finish within -drain-grace, force-cancels any
// stragglers, flushes the -cachedir result cache, and exits 0. A second
// signal aborts immediately with exit 130. Exit codes: 0 clean (including
// drained), 1 runtime failure, 2 bad flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cameo/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("cameod", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8347", "listen address")
		jobs        = fs.Int("jobs", runtime.GOMAXPROCS(0), "simulation workers per sweep")
		maxInflight = fs.Int("max-inflight", 2, "sweep requests executing concurrently")
		maxQueue    = fs.Int("max-queue", 8, "sweep requests allowed to wait for a slot (beyond that: 429)")
		maxCells    = fs.Int("max-cells", 1024, "largest grid a single request may ask for")
		jobTimeout  = fs.Duration("job-timeout", 0, "per-cell watchdog: cancel an attempt running longer than this and reclaim its worker (0 = off)")
		retries     = fs.Int("retries", 0, "retry transiently-failed cells this many times")
		cachedir    = fs.String("cachedir", "", "persistent result-cache directory shared across requests and restarts")
		drainGrace  = fs.Duration("drain-grace", 30*time.Second, "how long a drain waits for in-flight sweeps before cancelling them")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := log.New(os.Stderr, "cameod: ", log.LstdFlags)

	srv, err := server.New(server.Options{
		Jobs:        *jobs,
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		MaxCells:    *maxCells,
		JobTimeout:  *jobTimeout,
		Retries:     *retries,
		CacheDir:    *cachedir,
		DrainGrace:  *drainGrace,
		Log:         logger,
	})
	if err != nil {
		logger.Print(err)
		return 1
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s (inflight %d, queue %d, %d workers/sweep)",
		*addr, *maxInflight, *maxQueue, *jobs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		logger.Print(err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default handling: a second signal kills us (exit 130)

	// Drain: admission closes first, then in-flight sweeps get the grace,
	// then the cache is flushed. The HTTP listener shuts down after the
	// handlers have finished, so Shutdown returns promptly.
	if err := srv.Drain(); err != nil {
		logger.Printf("drain: %v", err)
		return 1
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("shutdown: %v", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "cameod: exiting after clean drain")
	return 0
}
