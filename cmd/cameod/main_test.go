package main

import (
	"bytes"
	"net"
	"strings"
	"testing"
)

// TestRunListenErrors: an unusable listen address — busy port or malformed
// string — exits 1 with one clear diagnostic line, never a panic or a bare
// log.Fatal stack.
func TestRunListenErrors(t *testing.T) {
	// Occupy a port so cameod's bind collides.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	busy := ln.Addr().String()

	cases := []struct {
		name string
		addr string
	}{
		{"busy-port", busy},
		{"malformed", "not-an-address:::"},
		{"bad-port", "127.0.0.1:99999"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			code := func() (code int) {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("run panicked: %v", p)
					}
				}()
				return run([]string{"-addr", tc.addr}, &stderr)
			}()
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), "cannot listen on "+tc.addr) {
				t.Fatalf("stderr lacks the listen diagnostic: %q", stderr.String())
			}
		})
	}
}

// TestRunFlagValidation: incoherent flag combinations are usage errors
// (exit 2) with a message naming the missing flag.
func TestRunFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:0", "-coordinator"}, &stderr); code != 2 {
		t.Fatalf("-coordinator without -workers: exit %d, want 2 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-workers") {
		t.Fatalf("stderr does not name the missing flag: %q", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"-addr", "127.0.0.1:0", "-peers", "http://peer:1"}, &stderr); code != 2 {
		t.Fatalf("-peers without -cachedir: exit %d, want 2 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-cachedir") {
		t.Fatalf("stderr does not name the missing flag: %q", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"-no-such-flag"}, &stderr); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
}

// TestRunCoordinatorBadWorkers: a coordinator with an invalid worker list
// fails with the fleet's diagnostic, exit 1.
func TestRunCoordinatorBadWorkers(t *testing.T) {
	var stderr bytes.Buffer
	code := run([]string{"-addr", "127.0.0.1:0", "-coordinator", "-workers", "worker-sans-scheme:9000"}, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "http(s) base URL") {
		t.Fatalf("stderr lacks the worker-URL diagnostic: %q", stderr.String())
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" http://a:1 ,, http://b:2,")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("splitList = %#v", got)
	}
	if splitList("") != nil {
		t.Fatalf("splitList(\"\") = %#v, want nil", splitList(""))
	}
}

// TestRunMembershipFlagValidation: the membership/chaos flags fail fast on
// incoherent combinations — a coordinator cannot -join, and an unparsable
// -chaos spec is a usage error naming the bad rule.
func TestRunMembershipFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	code := run([]string{"-addr", "127.0.0.1:0", "-coordinator",
		"-workers", "http://w:1", "-join", "http://c:1"}, &stderr)
	if code != 2 {
		t.Fatalf("-coordinator with -join: exit %d, want 2 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-join is a worker flag") {
		t.Fatalf("stderr lacks the -join diagnostic: %q", stderr.String())
	}

	stderr.Reset()
	code = run([]string{"-addr", "127.0.0.1:0", "-chaos", "fleet/dispatch:no-such-kind"}, &stderr)
	if code != 2 {
		t.Fatalf("bad -chaos spec: exit %d, want 2 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no-such-kind") {
		t.Fatalf("stderr does not name the bad chaos kind: %q", stderr.String())
	}
}

// TestRunStandbyFlagValidation: -standby combinations that cannot work are
// usage errors naming the conflict.
func TestRunStandbyFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	code := run([]string{"-addr", "127.0.0.1:0", "-standby", "http://primary:1", "-coordinator",
		"-workers", "http://w:1", "-cachedir", t.TempDir()}, &stderr)
	if code != 2 {
		t.Fatalf("-standby with -coordinator: exit %d, want 2 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-standby already implies the coordinator role") {
		t.Fatalf("stderr lacks the -coordinator conflict diagnostic: %q", stderr.String())
	}

	stderr.Reset()
	code = run([]string{"-addr", "127.0.0.1:0", "-standby", "http://primary:1",
		"-join", "http://c:1", "-cachedir", t.TempDir()}, &stderr)
	if code != 2 {
		t.Fatalf("-standby with -join: exit %d, want 2 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-join is a worker flag") {
		t.Fatalf("stderr lacks the -join conflict diagnostic: %q", stderr.String())
	}

	stderr.Reset()
	code = run([]string{"-addr", "127.0.0.1:0", "-standby", "http://primary:1"}, &stderr)
	if code != 2 {
		t.Fatalf("-standby without -cachedir: exit %d, want 2 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-cachedir") {
		t.Fatalf("stderr lacks the -cachedir diagnostic: %q", stderr.String())
	}

	// A malformed primary URL is caught by the standby's own validation.
	stderr.Reset()
	code = run([]string{"-addr", "127.0.0.1:0", "-standby", "primary-sans-scheme:9000",
		"-cachedir", t.TempDir()}, &stderr)
	if code != 1 {
		t.Fatalf("schemeless -standby URL: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
}
