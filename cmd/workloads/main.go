// Command workloads inspects the synthetic Table II benchmark generators:
// it lists the specs, or dry-runs one generator and reports the measured
// stream statistics (MPKI, footprint coverage, spatial utilization, write
// fraction, PC diversity) so the calibration can be audited without running
// a full simulation.
//
// Usage:
//
//	workloads                       # list all benchmarks
//	workloads -bench milc           # measure milc's stream
//	workloads -bench mcf -scale 512 -requests 500000
package main

import (
	"flag"
	"fmt"
	"os"

	"cameo/internal/stats"
	"cameo/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "", "benchmark to measure (empty: list all)")
		scale    = flag.Uint64("scale", 1024, "capacity scale divisor")
		requests = flag.Int("requests", 200_000, "demand requests to sample")
		core     = flag.Int("core", 0, "core id (selects the stream seed)")
		seed     = flag.Uint64("seed", 0xCA3E0, "base seed")
	)
	flag.Parse()

	if *bench == "" {
		tab := stats.NewTable("Table II benchmarks", "Name", "Class", "MPKI",
			"Footprint GB", "ZipfAlpha", "Stream", "Lines/Page", "Burst", "WriteFrac", "MLP")
		for _, s := range workload.Specs() {
			tab.AddRowF(s.Name, s.Class.String(), s.MPKI,
				float64(s.FootprintBytes)/float64(1<<30), s.ZipfAlpha, s.StreamFrac,
				s.LinesPerPage, s.BurstLen, s.WriteFrac, s.MLP)
		}
		tab.Render(os.Stdout)
		return
	}

	spec, ok := workload.SpecByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "workloads: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	s := workload.NewStream(spec, *scale, *core, *seed)

	var instr uint64
	demands, writes := 0, 0
	pages := map[uint64]map[uint64]bool{}
	pcs := map[uint64]int{}
	for demands < *requests {
		r := s.Next()
		if r.Write {
			writes++
			continue
		}
		instr += r.Gap
		demands++
		page := r.VLine / workload.LinesPerPageTotal
		if pages[page] == nil {
			pages[page] = map[uint64]bool{}
		}
		pages[page][r.VLine%workload.LinesPerPageTotal] = true
		pcs[r.PC]++
	}

	linesUsed := 0
	for _, ls := range pages {
		linesUsed += len(ls)
	}
	fmt.Printf("benchmark:        %s (%s-limited)\n", spec.Name, spec.Class)
	fmt.Printf("scaled footprint: %d pages per core (%d KB)\n", s.Pages(), s.Pages()*4)
	fmt.Printf("measured MPKI:    %.1f (spec %.1f)\n", float64(demands)*1000/float64(instr), spec.MPKI)
	fmt.Printf("write fraction:   %.2f (spec %.2f)\n", float64(writes)/float64(demands), spec.WriteFrac)
	fmt.Printf("pages touched:    %d of %d (%.0f%%)\n", len(pages), s.Pages(),
		100*float64(len(pages))/float64(s.Pages()))
	fmt.Printf("lines per page:   %.1f used on average (spec %d)\n",
		float64(linesUsed)/float64(len(pages)), spec.LinesPerPage)
	fmt.Printf("distinct PCs:     %d\n", len(pcs))
}
