// Command metricsgate is the CI benchmark-regression gate: it compares the
// aggregate metrics of a fresh telemetry dump against a checked-in baseline
// and exits non-zero when any counter drifts beyond its allowed tolerance.
//
// Usage:
//
//	paperbench -exp fig13 -quiet -telemetry out.json
//	metricsgate -baseline results/metrics-baseline.json -current out.json \
//	    -allowlist results/metrics-allowlist.json
//
// Both inputs are telemetry files as written by -telemetry. Every metric in
// either baseline or current is compared by its scalar total; a metric with
// no allowlist rule must match exactly. The allowlist is JSON:
//
//	{"rules": [
//	  {"pattern": "sys/demand_latency", "rel": 0.05},
//	  {"pattern": "vm/*", "rel": 0.01}
//	]}
//
// Patterns are exact names or prefixes ending in '*'; the first matching
// rule wins and grants |current-base| / max(|base|,1) <= rel.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cameo/internal/metrics"
	"cameo/internal/runner"
)

// Rule grants one pattern a relative drift tolerance.
type Rule struct {
	Pattern string  `json:"pattern"`
	Rel     float64 `json:"rel"`
}

// Allowlist is the checked-in tolerance policy.
type Allowlist struct {
	Rules []Rule `json:"rules"`
}

// tolerance returns the allowed relative drift for name: the first matching
// rule's, or 0 (exact match required).
func (a Allowlist) tolerance(name string) float64 {
	for _, r := range a.Rules {
		if pfx, ok := strings.CutSuffix(r.Pattern, "*"); ok {
			if strings.HasPrefix(name, pfx) {
				return r.Rel
			}
		} else if name == r.Pattern {
			return r.Rel
		}
	}
	return 0
}

func main() {
	var (
		baseline  = flag.String("baseline", "results/metrics-baseline.json", "checked-in baseline telemetry file")
		current   = flag.String("current", "", "freshly generated telemetry file (required)")
		allowlist = flag.String("allowlist", "", "JSON tolerance policy (default: exact match for every metric)")
	)
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "metricsgate: -current is required")
		os.Exit(2)
	}

	base, err := readAggregate(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricsgate:", err)
		os.Exit(2)
	}
	cur, err := readAggregate(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricsgate:", err)
		os.Exit(2)
	}
	var allow Allowlist
	if *allowlist != "" {
		if err := readJSON(*allowlist, &allow); err != nil {
			fmt.Fprintln(os.Stderr, "metricsgate:", err)
			os.Exit(2)
		}
	}

	// Diff reports only drifting names; the union size is the number of
	// metrics actually guarded by the gate.
	compared := map[string]bool{}
	for _, sm := range base {
		compared[sm.Name] = true
	}
	for _, sm := range cur {
		compared[sm.Name] = true
	}

	var violations int
	deltas := metrics.Diff(base, cur)
	for _, d := range deltas {
		tol := allow.tolerance(d.Name)
		switch {
		case d.Missing:
			// A metric appearing or disappearing is always a gate failure:
			// renames must update the baseline deliberately.
			fmt.Printf("FAIL %-40s present in only one side (base=%g cur=%g)\n",
				d.Name, d.Base, d.Current)
			violations++
		case d.Rel() > tol:
			fmt.Printf("FAIL %-40s base=%g cur=%g drift=%.4f allowed=%.4f\n",
				d.Name, d.Base, d.Current, d.Rel(), tol)
			violations++
		}
	}
	if violations > 0 {
		fmt.Printf("metricsgate: %d violation(s) across %d metrics — update %s deliberately if the change is intended\n",
			violations, len(compared), *baseline)
		os.Exit(1)
	}
	fmt.Printf("metricsgate: ok (%d metrics within tolerance, %d drifted within allowlist)\n",
		len(compared), len(deltas))
}

// readAggregate loads a telemetry file and returns its aggregate snapshot.
func readAggregate(path string) (metrics.Snapshot, error) {
	var t runner.Telemetry
	if err := readJSON(path, &t); err != nil {
		return nil, err
	}
	if t.Aggregate == nil {
		return nil, fmt.Errorf("%s: no aggregate section (not a telemetry file?)", path)
	}
	return t.Aggregate, nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
