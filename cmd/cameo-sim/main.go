// Command cameo-sim runs one (benchmark, organization) simulation and
// prints a detailed result: execution time, memory latency, per-module
// bandwidth, paging behaviour, and organization-specific statistics.
//
// Usage:
//
//	cameo-sim -bench mcf -org cameo
//	cameo-sim -bench milc -org cameo -llt embedded -pred sam
//	cameo-sim -bench sphinx3 -org cache -scale 512 -cores 16 -instr 1000000
//	cameo-sim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"cameo/internal/cameo"
	"cameo/internal/profiling"
	"cameo/internal/report"
	"cameo/internal/runner"
	"cameo/internal/system"
	"cameo/internal/workload"
)

var lltNames = map[string]cameo.LLTKind{
	"colocated": cameo.CoLocatedLLT,
	"embedded":  cameo.EmbeddedLLT,
	"ideal":     cameo.IdealLLT,
}

var predNames = map[string]cameo.PredKind{
	"llp":     cameo.LLP,
	"sam":     cameo.SAM,
	"perfect": cameo.Perfect,
}

func keys[V any](m map[string]V) string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return strings.Join(ks, ", ")
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the whole program; main only translates its result into an exit
// status. Error paths return instead of calling os.Exit so deferred cleanup
// (in particular stopping -cpuprofile, whose file is truncated garbage unless
// pprof.StopCPUProfile runs) always executes.
func run(args []string) (code int) {
	fs := flag.NewFlagSet("cameo-sim", flag.ContinueOnError)
	var (
		bench    = fs.String("bench", "sphinx3", "benchmark name from Table II")
		org      = fs.String("org", "cameo", "organization: "+strings.Join(system.OrgNames(), ", "))
		llt      = fs.String("llt", "colocated", "CAMEO LLT design: "+keys(lltNames))
		pred     = fs.String("pred", "llp", "CAMEO predictor: "+keys(predNames))
		scale    = fs.Uint64("scale", 1024, "capacity scale divisor")
		cores    = fs.Int("cores", 32, "core count")
		instr    = fs.Uint64("instr", 600_000, "instructions per core")
		seed     = fs.Uint64("seed", 0xCA3E0, "random seed")
		useL3    = fs.Bool("l3", false, "model the shared L3 explicitly")
		mempart  = fs.Int("mempart", 0, "memcache: percent of stacked DRAM exposed as memory (0 = org default)")
		ways     = fs.Int("ways", 0, "gemini: victim-region associativity (0 = org default)")
		list     = fs.Bool("list", false, "list benchmarks and exit")
		listOrgs = fs.Bool("list-orgs", false, "list registered memory organizations and exit")
		vsBase   = fs.Bool("speedup", true, "also run the baseline and report speedup")
		mix      = fs.String("mix", "", "comma-separated benchmarks for a multi-programmed mix (overrides -bench)")
		warmup   = fs.Uint64("warmup", 0, "per-core warm-up instructions before measurement")
		refresh  = fs.Bool("refresh", false, "model DRAM refresh")
		asJSON   = fs.Bool("json", false, "emit the result as JSON instead of text")
		hist     = fs.Bool("hist", false, "print the demand-latency histogram")
		jobs     = fs.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation workers (the -speedup baseline runs concurrently)")
		cachedir = fs.String("cachedir", "", "persistent result-cache directory (note: cached results omit the -hist histogram)")

		jobTimeout = fs.Duration("job-timeout", 0, "watchdog: abandon a run attempt longer than this (0 = off)")
		retries    = fs.Int("retries", 0, "retry a transiently-failed run this many times")
	)
	prof := profiling.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cameo-sim:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "cameo-sim:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *list {
		for _, s := range workload.Specs() {
			fmt.Printf("%-12s %-9s MPKI=%-5.1f footprint=%.1fGB\n",
				s.Name, s.Class, s.MPKI, float64(s.FootprintBytes)/float64(1<<30))
		}
		return 0
	}
	if *listOrgs {
		for _, name := range system.OrgNames() {
			k, _ := system.ParseOrg(name)
			if d, ok := system.OrgDescriptor(k); ok {
				fmt.Printf("%-12s %-12s %s\n", d.Name, d.Display, d.Summary)
			}
		}
		return 0
	}

	var mixSpecs []workload.Spec
	if *mix != "" {
		for _, name := range strings.Split(*mix, ",") {
			ms, ok := workload.SpecByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "cameo-sim: unknown mix member %q (use -list)\n", name)
				return 2
			}
			mixSpecs = append(mixSpecs, ms)
		}
	}
	spec, ok := workload.SpecByName(*bench)
	if !ok && len(mixSpecs) == 0 {
		fmt.Fprintf(os.Stderr, "cameo-sim: unknown benchmark %q (use -list)\n", *bench)
		return 2
	}
	kind, ok := system.ParseOrg(*org)
	if !ok {
		fmt.Fprintf(os.Stderr, "cameo-sim: unknown organization %q (have: %s)\n", *org, strings.Join(system.OrgNames(), ", "))
		return 2
	}
	cfg := system.Config{
		Org:          kind,
		ScaleDiv:     *scale,
		Cores:        *cores,
		InstrPerCore: *instr,
		Seed:         *seed,
		UseL3:        *useL3,
		WarmupInstr:  *warmup,
		Refresh:      *refresh,
		MemPartPct:   *mempart,
		HybridWays:   *ways,
	}
	if kind == system.CAMEO {
		var ok1, ok2 bool
		cfg.LLT, ok1 = lltNames[strings.ToLower(*llt)]
		cfg.Pred, ok2 = predNames[strings.ToLower(*pred)]
		if !ok1 || !ok2 {
			fmt.Fprintf(os.Stderr, "cameo-sim: bad -llt/-pred (llt: %s; pred: %s)\n",
				keys(lltNames), keys(predNames))
			return 2
		}
	}

	ropts := runner.Options{Jobs: *jobs, JobTimeout: *jobTimeout, Retries: *retries}
	if *cachedir != "" {
		cache, err := runner.OpenDiskCache(*cachedir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cameo-sim:", err)
			return 1
		}
		defer cache.Close()
		ropts.Cache = cache
	}
	pool := runner.New(ropts)
	mkJob := func(c system.Config) runner.Job {
		if len(mixSpecs) > 0 {
			return runner.MixJob(mixSpecs, c)
		}
		return runner.NewJob(spec, c)
	}
	getResult := func(c system.Config) (system.Result, bool) {
		res, err := pool.Get(ctx, mkJob(c))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cameo-sim:", err)
			return system.Result{}, false
		}
		return res, true
	}
	if *vsBase && kind != system.Baseline {
		// Fan the measured run and its baseline across the pool up front.
		bcfg := cfg
		bcfg.Org = system.Baseline
		if err := pool.RunAll(ctx, []runner.Job{mkJob(cfg), mkJob(bcfg)}); err != nil {
			fmt.Fprintln(os.Stderr, "cameo-sim:", err)
			return 1
		}
	}
	res, ok := getResult(cfg)
	if !ok {
		return 1
	}
	if *asJSON {
		if err := report.WriteJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "cameo-sim:", err)
			return 1
		}
		return 0
	}
	printResult(res)
	if *hist && res.Latency != nil {
		fmt.Println("\ndemand latency distribution (cycles):")
		res.Latency.Render(os.Stdout)
	}

	if *vsBase && kind != system.Baseline {
		bcfg := cfg
		bcfg.Org = system.Baseline
		base, ok := getResult(bcfg)
		if !ok {
			return 1
		}
		fmt.Printf("\nspeedup vs baseline: %.2fx (baseline %d cycles)\n",
			float64(base.Cycles)/float64(res.Cycles), base.Cycles)
	}
	return 0
}

func printResult(r system.Result) {
	fmt.Printf("organization:   %s\n", r.Org)
	fmt.Printf("benchmark:      %s (%s-limited)\n", r.Benchmark, r.Class)
	fmt.Printf("cores:          %d\n", r.Cores)
	fmt.Printf("instructions:   %d\n", r.Instructions)
	fmt.Printf("cycles:         %d (aggregate IPC %.2f)\n", r.Cycles, r.IPC())
	fmt.Printf("demands:        %d (avg latency %.0f cycles, p50<=%d p95<=%d p99<=%d)\n",
		r.Demands, r.AvgMemLatency, r.LatencyP50, r.LatencyP95, r.LatencyP99)
	fmt.Printf("writebacks:     %d (%d dropped with evicted pages)\n", r.Writebacks, r.DroppedWritebacks)
	fmt.Printf("stacked DRAM:   %d accesses, %.1f MB, row-hit %.0f%%\n",
		r.Stacked.Accesses(), float64(r.Stacked.Bytes())/1e6, 100*r.Stacked.RowHitRate())
	fmt.Printf("off-chip DRAM:  %d accesses, %.1f MB, row-hit %.0f%%\n",
		r.OffChip.Accesses(), float64(r.OffChip.Bytes())/1e6, 100*r.OffChip.RowHitRate())
	fmt.Printf("paging:         %d minor, %d major faults, %.1f MB storage traffic\n",
		r.VM.MinorFaults, r.VM.MajorFaults, float64(r.StorageBytes())/1e6)
	if r.Cameo != nil {
		fmt.Printf("CAMEO:          stacked service %.1f%%, %d swaps, predictor accuracy %.1f%%\n",
			100*r.Cameo.StackedServiceRate(), r.Cameo.Swaps, 100*r.Cameo.Cases.Accuracy())
		p := r.Cameo.Cases.Percent()
		fmt.Printf("LLP cases:      stk/stk %.1f%%  stk/off %.1f%%  off/stk %.1f%%  off/ok %.1f%%  off/wrong %.1f%%\n",
			p[0], p[1], p[2], p[3], p[4])
	}
	if r.Alloy != nil {
		fmt.Printf("Alloy cache:    hit rate %.1f%%, %d fills, %d dirty evicts, %d wasted reads\n",
			100*r.Alloy.HitRate(), r.Alloy.Fills, r.Alloy.DirtyEvicts, r.Alloy.WastedReads)
	}
	if r.LohHill != nil {
		fmt.Printf("LH cache:       hit rate %.1f%%, %d fills, %d dirty evicts\n",
			100*r.LohHill.HitRate(), r.LohHill.Fills, r.LohHill.DirtyEvicts)
	}
	if r.Migrations != nil {
		fmt.Printf("migrations:     %d page swaps, %d promotions\n", r.Migrations.Swaps, r.Migrations.Moves)
	}
	if r.L3 != nil {
		fmt.Printf("L3:             %d hits, %d misses (miss rate %.1f%%)\n",
			r.L3.Hits, r.L3.Misses, 100*r.L3.MissRate())
	}
}
