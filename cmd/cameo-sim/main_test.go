package main

import (
	"os"
	"path/filepath"
	"testing"
)

// checkProfile asserts the CPU profile at path is a complete pprof file
// (gzip-framed protobuf), not the truncated garbage left behind when a
// process exits without pprof.StopCPUProfile.
func checkProfile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("profile %s is not a gzip stream (%d bytes): deferred stop did not run", path, len(data))
	}
}

func TestRunErrorPathFlushesProfile(t *testing.T) {
	// An unknown organization used to os.Exit(2) straight past the deferred
	// profiling stop, truncating -cpuprofile output. run() must return 2 and
	// still leave a valid profile behind.
	prof := filepath.Join(t.TempDir(), "cpu.pprof")
	if code := run([]string{"-cpuprofile", prof, "-org", "no-such-org"}); code != 2 {
		t.Fatalf("run returned %d, want 2", code)
	}
	checkProfile(t, prof)
}

func TestRunList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("run -list returned %d", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-no-such-flag"}); code != 2 {
		t.Fatalf("run returned %d, want 2", code)
	}
}
