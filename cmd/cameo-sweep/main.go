// Command cameo-sweep runs one organization across a parameter sweep and
// emits a CSV grid — the workhorse for sensitivity studies beyond the
// canned experiments.
//
// Sweepable dimensions: benchmark (always), plus one of
//
//	-sweep scale   -values 512,1024,2048     capacity scale divisor
//	-sweep cores   -values 8,16,32           rate-mode copies
//	-sweep ratio   -values 2,4               stacked share divisor
//	-sweep seed    -values 1,2,3,4,5         placement/stream seeds
//
// Organizations may declare extra dimensions (system.SweepDims):
//
//	-org memcache -sweep mempart -values 25,50,75   memory/cache partition %
//	-org gemini   -sweep ways    -values 2,4,8      victim-region associativity
//
// Example:
//
//	cameo-sweep -org cameo -bench milc,gcc -sweep scale -values 512,1024 -out sweep.csv
//
// Cells fan out across -jobs workers; rows are emitted in sweep order
// regardless of completion order, so the CSV is byte-identical for any
// worker count. With -cachedir, already-simulated cells load from disk and
// an interrupted sweep can continue with -resume. -job-timeout, -retries
// and -keep-going harden long sweeps against stuck or failing cells, and
// -chaos injects deterministic faults to drill exactly those paths.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"cameo/internal/experiments"
	"cameo/internal/faultinject"
	"cameo/internal/profiling"
	"cameo/internal/report"
	"cameo/internal/runner"
	"cameo/internal/system"
	"cameo/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the whole program; main only translates its result into an exit
// status. Error paths return instead of calling os.Exit so deferred cleanup
// (in particular stopping -cpuprofile, whose file is truncated garbage unless
// pprof.StopCPUProfile runs) always executes.
func run(args []string) (code int) {
	fs := flag.NewFlagSet("cameo-sweep", flag.ContinueOnError)
	var (
		org      = fs.String("org", "cameo", "organization to sweep (one of: "+strings.Join(system.OrgNames(), ", ")+")")
		bench    = fs.String("bench", "milc,gcc,mcf", "comma-separated benchmarks")
		sweep    = fs.String("sweep", "scale", "dimension: scale, cores, ratio, seed, or an org-specific one (memcache: mempart; gemini: ways)")
		values   = fs.String("values", "512,1024,2048", "comma-separated sweep values")
		instr    = fs.Uint64("instr", 300_000, "instructions per core")
		cores    = fs.Int("cores", 16, "core count (unless swept)")
		shards   = fs.Int("shards", 0, "group-sharded execution mode: lane worker count per cell (0 = sequential; output is byte-identical at any value >= 1)")
		out      = fs.String("out", "", "CSV output path (default stdout)")
		jobs     = fs.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation workers")
		cachedir = fs.String("cachedir", "", "persistent result-cache directory")
		quiet    = fs.Bool("quiet", false, "suppress the stderr progress display")

		jobTimeout = fs.Duration("job-timeout", 0, "per-cell watchdog: cancel an attempt that runs longer than this and reclaim its worker (0 = off)")
		retries    = fs.Int("retries", 0, "retry transiently-failed cells (panics, timeouts) this many times")
		keepGoing  = fs.Bool("keep-going", false, "skip failed cells in the CSV, write a failure report, exit 3")
		resume     = fs.Bool("resume", false, "resume an interrupted sweep from its -cachedir checkpoint manifest")
		failures   = fs.String("failures", "", "with -keep-going, also write the failure report as JSON to this path")
		chaos      = fs.String("chaos", "", "fault-injection spec for robustness drills, e.g. 'job:panic:p=0.2;cacheload:corrupt:p=0.1'")
		chaosSeed  = fs.Uint64("chaos-seed", 1, "seed for the -chaos fault schedule")

		telemetry = fs.String("telemetry", "", "write the per-cell metrics telemetry as JSON to this path")
		telTiming = fs.Bool("telemetry-timing", false, "include volatile wall-time/cache fields in -telemetry output")
	)
	prof := profiling.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cameo-sweep:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "cameo-sweep:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	kind, ok := system.ParseOrg(*org)
	if !ok {
		fmt.Fprintf(os.Stderr, "cameo-sweep: unknown organization %q (have: %s)\n", *org, strings.Join(system.OrgNames(), ", "))
		return 2
	}
	var vals []uint64
	for _, v := range strings.Split(*values, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cameo-sweep: bad value:", err)
			return 2
		}
		vals = append(vals, n)
	}

	// One sweep cell: its job plus the self-describing benchmark tag.
	type cell struct {
		job runner.Job
		tag string
	}
	var cells []cell
	for _, bn := range strings.Split(*bench, ",") {
		spec, ok := workload.SpecByName(strings.TrimSpace(bn))
		if !ok {
			fmt.Fprintf(os.Stderr, "cameo-sweep: unknown benchmark %q (valid: %s)\n",
				bn, strings.Join(experiments.BenchmarkNames(), ", "))
			return 2
		}
		for _, v := range vals {
			cfg := system.Config{
				Org:          kind,
				ScaleDiv:     1024,
				Cores:        *cores,
				InstrPerCore: *instr,
				Shards:       *shards,
			}
			if err := system.ApplySweep(&cfg, *sweep, v); err != nil {
				fmt.Fprintln(os.Stderr, "cameo-sweep:", err)
				return 2
			}
			cells = append(cells, cell{
				job: runner.NewJob(spec, cfg),
				tag: fmt.Sprintf("%s@%s=%d", spec.Name, *sweep, v),
			})
		}
	}

	if *resume && *cachedir == "" {
		fmt.Fprintln(os.Stderr, "cameo-sweep: -resume needs -cachedir (the manifest lives in the cache directory)")
		return 2
	}

	// Progress only when stderr is an interactive terminal and -quiet was
	// not given: piping the CSV to a file or running under CI must not
	// produce \r-spinner noise.
	ropts := runner.Options{
		Jobs:       *jobs,
		Progress:   runner.AutoProgress(*quiet),
		JobTimeout: *jobTimeout,
		Retries:    *retries,
		KeepGoing:  *keepGoing,
	}
	var plan *faultinject.Plan
	if *chaos != "" {
		var err error
		plan, err = faultinject.ParseSpec(*chaosSeed, *chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cameo-sweep:", err)
			return 2
		}
		ropts.Faults = plan
	}
	allJobs := make([]runner.Job, len(cells))
	for i, c := range cells {
		allJobs[i] = c.job
	}
	if *cachedir != "" {
		cache, err := runner.OpenDiskCache(*cachedir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cameo-sweep:", err)
			return 1
		}
		defer cache.Close()
		cache.SetFaults(plan)
		ropts.Cache = cache

		checkpoint, err := runner.OpenCheckpoint(*cachedir, allJobs, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cameo-sweep:", err)
			return 1
		}
		if n := checkpoint.Resumed(); n > 0 {
			fmt.Fprintf(os.Stderr, "cameo-sweep: resuming run %.16s: %d cells already done\n",
				checkpoint.RunID(), n)
		}
		ropts.Checkpoint = checkpoint
	}
	r := runner.New(ropts)
	runErr := r.RunAll(ctx, allJobs)
	var failedCells *runner.FailedCellsError
	switch {
	case runErr == nil:
	case errors.As(runErr, &failedCells):
		// Keep-going: the CSV below skips the failed cells; report + exit 3
		// happen after the partial grid is written.
	default:
		fmt.Fprintln(os.Stderr, "cameo-sweep:", runErr)
		if errors.Is(runErr, context.Canceled) {
			return 130
		}
		return 1
	}

	// Deterministic merge: collect in sweep order (memo hits), tagging the
	// swept value into the benchmark column so the CSV is self-describing.
	// In keep-going mode, cells that failed have no memoized result and are
	// skipped — the failure report names them.
	results := make([]system.Result, 0, len(cells))
	for _, c := range cells {
		res, ok := r.Lookup(c.job.Key())
		if !ok {
			continue
		}
		res.Benchmark = c.tag
		results = append(results, res)
	}

	if err := writeCSV(*out, results); err != nil {
		fmt.Fprintln(os.Stderr, "cameo-sweep:", err)
		return 1
	}
	if *telemetry != "" {
		if err := writeTelemetry(*telemetry, r, *telTiming); err != nil {
			fmt.Fprintln(os.Stderr, "cameo-sweep:", err)
			return 1
		}
	}

	if failedCells != nil {
		if *failures != "" {
			if err := writeFailures(*failures, failedCells.Report); err != nil {
				fmt.Fprintln(os.Stderr, "cameo-sweep:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "cameo-sweep: wrote failure report to %s\n", *failures)
		}
		fmt.Fprintln(os.Stderr, "cameo-sweep:", failedCells.Report.Summary())
		return 3
	}
	if err := ropts.Checkpoint.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "cameo-sweep: removing checkpoint manifest:", err)
	}
	return 0
}

// writeFailures dumps the keep-going failure report as deterministic JSON.
func writeFailures(path string, rep *runner.FailureReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := rep.WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// writeTelemetry dumps every cell's metrics snapshot plus the aggregate.
func writeTelemetry(path string, r *runner.Runner, timing bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := r.Telemetry(timing).WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// writeCSV emits the grid to path (stdout when empty), closing the output
// file explicitly so close errors are reported.
func writeCSV(path string, results []system.Result) error {
	if path == "" {
		return report.WriteCSV(os.Stdout, results)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := report.WriteCSV(f, results)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return fmt.Errorf("closing %s: %w", path, cerr)
	}
	return nil
}
