// Command cameo-sweep runs one organization across a parameter sweep and
// emits a CSV grid — the workhorse for sensitivity studies beyond the
// canned experiments.
//
// Sweepable dimensions: benchmark (always), plus one of
//
//	-sweep scale   -values 512,1024,2048     capacity scale divisor
//	-sweep cores   -values 8,16,32           rate-mode copies
//	-sweep ratio   -values 2,4               stacked share divisor
//	-sweep seed    -values 1,2,3,4,5         placement/stream seeds
//
// Example:
//
//	cameo-sweep -org cameo -bench milc,gcc -sweep scale -values 512,1024 -out sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cameo/internal/report"
	"cameo/internal/system"
	"cameo/internal/workload"
)

var orgNames = map[string]system.OrgKind{
	"baseline":    system.Baseline,
	"cache":       system.Cache,
	"tlm-static":  system.TLMStatic,
	"tlm-dynamic": system.TLMDynamic,
	"tlm-freq":    system.TLMFreq,
	"tlm-oracle":  system.TLMOracle,
	"cameo":       system.CAMEO,
	"doubleuse":   system.DoubleUse,
}

func main() {
	var (
		org    = flag.String("org", "cameo", "organization to sweep")
		bench  = flag.String("bench", "milc,gcc,mcf", "comma-separated benchmarks")
		sweep  = flag.String("sweep", "scale", "dimension: scale, cores, ratio, seed")
		values = flag.String("values", "512,1024,2048", "comma-separated sweep values")
		instr  = flag.Uint64("instr", 300_000, "instructions per core")
		cores  = flag.Int("cores", 16, "core count (unless swept)")
		out    = flag.String("out", "", "CSV output path (default stdout)")
	)
	flag.Parse()

	kind, ok := orgNames[strings.ToLower(*org)]
	if !ok {
		fmt.Fprintln(os.Stderr, "cameo-sweep: unknown organization", *org)
		os.Exit(2)
	}
	var vals []uint64
	for _, v := range strings.Split(*values, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cameo-sweep: bad value:", err)
			os.Exit(2)
		}
		vals = append(vals, n)
	}

	var results []system.Result
	for _, bn := range strings.Split(*bench, ",") {
		spec, ok := workload.SpecByName(strings.TrimSpace(bn))
		if !ok {
			fmt.Fprintln(os.Stderr, "cameo-sweep: unknown benchmark", bn)
			os.Exit(2)
		}
		for _, v := range vals {
			cfg := system.Config{
				Org:          kind,
				ScaleDiv:     1024,
				Cores:        *cores,
				InstrPerCore: *instr,
			}
			switch *sweep {
			case "scale":
				cfg.ScaleDiv = v
			case "cores":
				cfg.Cores = int(v)
			case "ratio":
				cfg.StackedDivisor = int(v)
			case "seed":
				cfg.Seed = v
			default:
				fmt.Fprintln(os.Stderr, "cameo-sweep: unknown sweep dimension", *sweep)
				os.Exit(2)
			}
			r := system.Run(spec, cfg)
			// Tag the swept value into the benchmark column so the CSV is
			// self-describing.
			r.Benchmark = fmt.Sprintf("%s@%s=%d", spec.Name, *sweep, v)
			results = append(results, r)
			fmt.Fprintf(os.Stderr, "done %s (%d cycles)\n", r.Benchmark, r.Cycles)
		}
	}

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cameo-sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := report.WriteCSV(w, results); err != nil {
		fmt.Fprintln(os.Stderr, "cameo-sweep:", err)
		os.Exit(1)
	}
}
