// Command paperbench regenerates the tables and figures of the CAMEO paper
// (MICRO 2014) from the simulator in this repository.
//
// Usage:
//
//	paperbench                          # run every experiment
//	paperbench -exp fig13               # one experiment
//	paperbench -exp fig12 -bench milc,mcf -scale 512 -instr 200000
//	paperbench -jobs 8 -cachedir ~/.cache/cameo   # parallel + persistent cache
//
// Output is fixed-width text; each experiment prints the same rows/series
// the paper reports (see DESIGN.md for the per-experiment index). Each
// experiment's simulation grid fans out across -jobs workers; the output
// is byte-identical for any worker count. With -cachedir, already-simulated
// cells are loaded from disk instead of re-run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"cameo/internal/experiments"
	"cameo/internal/profiling"
	"cameo/internal/report"
	"cameo/internal/runner"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id ("+strings.Join(experiments.IDs(), ", ")+") or 'all'")
		scale    = flag.Uint64("scale", 0, "capacity scale divisor (default 1024)")
		cores    = flag.Int("cores", 0, "rate-mode core count (default 32)")
		instr    = flag.Uint64("instr", 0, "instructions per core (default 600000)")
		seed     = flag.Uint64("seed", 0, "random seed")
		bench    = flag.String("bench", "", "comma-separated benchmark subset (default: all of Table II)")
		csv      = flag.String("csv", "", "also dump the raw result grid as CSV to this path")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation workers")
		cachedir = flag.String("cachedir", "", "persistent result-cache directory (skip already-simulated cells)")
		quiet    = flag.Bool("quiet", false, "suppress the stderr progress display")

		telemetry = flag.String("telemetry", "", "write the per-cell metrics telemetry as JSON to this path")
		telTiming = flag.Bool("telemetry-timing", false, "include volatile wall-time/cache fields in -telemetry output (breaks byte-determinism)")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
		}
	}()

	// Ctrl-C cancels the context; the worker pool drains cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiments.Options{
		ScaleDiv:     *scale,
		Cores:        *cores,
		InstrPerCore: *instr,
		Seed:         *seed,
		Jobs:         *jobs,
	}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}
	// Progress is interactive-only: silenced by -quiet and whenever stderr
	// is not a terminal (CI logs, redirections).
	opts.Progress = runner.AutoProgress(*quiet)
	if *cachedir != "" {
		cache, err := runner.OpenDiskCache(*cachedir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		opts.Cache = cache
	}
	suite, err := experiments.NewSuite(opts)
	if err != nil {
		// Unknown benchmark names: the error carries the valid listing.
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(2)
	}
	experiments.Describe(suite, os.Stdout)

	if *exp == "all" {
		err = experiments.RunAll(ctx, suite, os.Stdout)
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (have: %s)\n",
				*exp, strings.Join(experiments.IDs(), ", "))
			os.Exit(2)
		}
		err = experiments.RunExperiment(ctx, suite, e, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}

	if *csv != "" {
		if err := writeCSV(*csv, suite); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d raw results to %s\n", len(suite.Results()), *csv)
	}
	if *telemetry != "" {
		if err := writeTelemetry(*telemetry, suite, *telTiming); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote telemetry to %s\n", *telemetry)
	}
}

// writeTelemetry dumps the suite's per-cell metrics snapshots. Without
// -telemetry-timing the file is byte-identical across runs and -jobs
// settings (the runner's determinism contract).
func writeTelemetry(path string, suite *experiments.Suite, timing bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := suite.Telemetry(timing).WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// writeCSV exports the raw grid, closing the file explicitly so a close
// failure (full disk, NFS flush) is reported instead of silently dropped.
func writeCSV(path string, suite *experiments.Suite) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := report.WriteCSV(f, suite.Results())
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return fmt.Errorf("closing %s: %w", path, cerr)
	}
	return nil
}
