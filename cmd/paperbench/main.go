// Command paperbench regenerates the tables and figures of the CAMEO paper
// (MICRO 2014) from the simulator in this repository.
//
// Usage:
//
//	paperbench                          # run every experiment
//	paperbench -exp fig13               # one experiment
//	paperbench -exp fig12 -bench milc,mcf -scale 512 -instr 200000
//	paperbench -jobs 8 -cachedir ~/.cache/cameo   # parallel + persistent cache
//	paperbench -cachedir /tmp/c -resume           # continue an interrupted run
//	paperbench -keep-going -retries 2 -job-timeout 5m -failures failed.json
//
// Output is fixed-width text; each experiment prints the same rows/series
// the paper reports (see DESIGN.md for the per-experiment index). Each
// experiment's simulation grid fans out across -jobs workers; the output
// is byte-identical for any worker count. With -cachedir, already-simulated
// cells are loaded from disk instead of re-run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"cameo/internal/experiments"
	"cameo/internal/profiling"
	"cameo/internal/report"
	"cameo/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the whole program; main only translates its result into an exit
// status. Error paths return instead of calling os.Exit so deferred cleanup
// (in particular stopping -cpuprofile, whose file is truncated garbage unless
// pprof.StopCPUProfile runs) always executes.
func run(args []string) (code int) {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment id ("+strings.Join(experiments.IDs(), ", ")+") or 'all'")
		scale    = fs.Uint64("scale", 0, "capacity scale divisor (default 1024)")
		cores    = fs.Int("cores", 0, "rate-mode core count (default 32)")
		instr    = fs.Uint64("instr", 0, "instructions per core (default 600000)")
		seed     = fs.Uint64("seed", 0, "random seed")
		shards   = fs.Int("shards", 0, "group-sharded execution mode: lane worker count for cells whose organization supports it, others stay sequential (0 = all sequential; output is byte-identical at any value >= 1)")
		bench    = fs.String("bench", "", "comma-separated benchmark subset (default: all of Table II)")
		csv      = fs.String("csv", "", "also dump the raw result grid as CSV to this path")
		jobs     = fs.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation workers")
		cachedir = fs.String("cachedir", "", "persistent result-cache directory (skip already-simulated cells)")
		quiet    = fs.Bool("quiet", false, "suppress the stderr progress display")

		jobTimeout = fs.Duration("job-timeout", 0, "per-cell watchdog: abandon an attempt that runs longer than this (0 = off)")
		retries    = fs.Int("retries", 0, "retry transiently-failed cells (panics, timeouts) this many times")
		keepGoing  = fs.Bool("keep-going", false, "quarantine failed cells into a report and finish the rest (exit 3 if any failed)")
		resume     = fs.Bool("resume", false, "resume an interrupted run from its -cachedir checkpoint manifest")
		failures   = fs.String("failures", "", "with -keep-going, also write the failure report as JSON to this path")

		telemetry = fs.String("telemetry", "", "write the per-cell metrics telemetry as JSON to this path")
		telTiming = fs.Bool("telemetry-timing", false, "include volatile wall-time/cache fields in -telemetry output (breaks byte-determinism)")
	)
	prof := profiling.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	// Ctrl-C cancels the context; the worker pool drains cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *resume && *cachedir == "" {
		fmt.Fprintln(os.Stderr, "paperbench: -resume needs -cachedir (the manifest lives in the cache directory)")
		return 2
	}

	opts := experiments.Options{
		ScaleDiv:     *scale,
		Cores:        *cores,
		InstrPerCore: *instr,
		Seed:         *seed,
		Shards:       *shards,
		Jobs:         *jobs,
		JobTimeout:   *jobTimeout,
		Retries:      *retries,
		KeepGoing:    *keepGoing,
	}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}
	// Progress is interactive-only: silenced by -quiet and whenever stderr
	// is not a terminal (CI logs, redirections).
	opts.Progress = runner.AutoProgress(*quiet)
	if *cachedir != "" {
		cache, err := runner.OpenDiskCache(*cachedir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
		defer cache.Close()
		opts.Cache = cache
	}

	// Which experiments run determines the sweep's cell set (and with it
	// the checkpoint identity).
	selected := experiments.All()
	if *exp != "all" {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (have: %s)\n",
				*exp, strings.Join(experiments.IDs(), ", "))
			return 2
		}
		selected = []experiments.Experiment{e}
	}

	var checkpoint *runner.Checkpoint
	if *cachedir != "" {
		// Plan the grid with a throwaway suite to derive the run identity,
		// then build the real suite with the checkpoint attached.
		planSuite, err := experiments.NewSuite(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 2
		}
		planned := experiments.PlannedJobs(planSuite, selected)
		checkpoint, err = runner.OpenCheckpoint(*cachedir, planned, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
		if n := checkpoint.Resumed(); n > 0 {
			fmt.Fprintf(os.Stderr, "paperbench: resuming run %.16s: %d cells already done\n",
				checkpoint.RunID(), n)
		}
		opts.Checkpoint = checkpoint
	}

	suite, err := experiments.NewSuite(opts)
	if err != nil {
		// Unknown benchmark names: the error carries the valid listing.
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		return 2
	}
	experiments.Describe(suite, os.Stdout)

	for _, e := range selected {
		if err = experiments.RunExperiment(ctx, suite, e, os.Stdout); err != nil {
			break
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		if errors.Is(err, context.Canceled) {
			return 130
		}
		return 1
	}

	if *csv != "" {
		if err := writeCSV(*csv, suite); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
		fmt.Printf("\nwrote %d raw results to %s\n", len(suite.Results()), *csv)
	}
	if *telemetry != "" {
		if err := writeTelemetry(*telemetry, suite, *telTiming); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
		fmt.Printf("\nwrote telemetry to %s\n", *telemetry)
	}

	if rep := suite.FailureReport(); rep != nil {
		// Keep-going mode completed everything it could; report what it
		// could not and exit non-zero so scripts notice. The checkpoint
		// manifest stays on disk: a later -resume run retries the failures.
		if *failures != "" {
			if werr := writeFailures(*failures, rep); werr != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", werr)
				return 1
			}
			fmt.Fprintf(os.Stderr, "paperbench: wrote failure report to %s\n", *failures)
		}
		fmt.Fprintln(os.Stderr, "paperbench:", rep.Summary())
		return 3
	}
	if err := checkpoint.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench: removing checkpoint manifest:", err)
	}
	return 0
}

// writeFailures dumps the keep-going failure report as deterministic JSON.
func writeFailures(path string, rep *runner.FailureReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := rep.WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// writeTelemetry dumps the suite's per-cell metrics snapshots. Without
// -telemetry-timing the file is byte-identical across runs and -jobs
// settings (the runner's determinism contract).
func writeTelemetry(path string, suite *experiments.Suite, timing bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := suite.Telemetry(timing).WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// writeCSV exports the raw grid, closing the file explicitly so a close
// failure (full disk, NFS flush) is reported instead of silently dropped.
func writeCSV(path string, suite *experiments.Suite) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := report.WriteCSV(f, suite.Results())
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return fmt.Errorf("closing %s: %w", path, cerr)
	}
	return nil
}
