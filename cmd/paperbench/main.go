// Command paperbench regenerates the tables and figures of the CAMEO paper
// (MICRO 2014) from the simulator in this repository.
//
// Usage:
//
//	paperbench                          # run every experiment
//	paperbench -exp fig13               # one experiment
//	paperbench -exp fig12 -bench milc,mcf -scale 512 -instr 200000
//
// Output is fixed-width text; each experiment prints the same rows/series
// the paper reports (see DESIGN.md for the per-experiment index).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cameo/internal/experiments"
	"cameo/internal/report"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id ("+strings.Join(experiments.IDs(), ", ")+") or 'all'")
		scale = flag.Uint64("scale", 0, "capacity scale divisor (default 1024)")
		cores = flag.Int("cores", 0, "rate-mode core count (default 32)")
		instr = flag.Uint64("instr", 0, "instructions per core (default 600000)")
		seed  = flag.Uint64("seed", 0, "random seed")
		bench = flag.String("bench", "", "comma-separated benchmark subset (default: all of Table II)")
		csv   = flag.String("csv", "", "also dump the raw result grid as CSV to this path")
	)
	flag.Parse()

	opts := experiments.Options{
		ScaleDiv:     *scale,
		Cores:        *cores,
		InstrPerCore: *instr,
		Seed:         *seed,
	}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}
	suite := experiments.NewSuite(opts)
	experiments.Describe(suite, os.Stdout)

	if *exp == "all" {
		experiments.RunAll(suite, os.Stdout)
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (have: %s)\n",
				*exp, strings.Join(experiments.IDs(), ", "))
			os.Exit(2)
		}
		fmt.Printf("\n### %s: %s\n\n", e.ID, e.Title)
		e.Run(suite, os.Stdout)
	}

	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := report.WriteCSV(f, suite.Results()); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d raw results to %s\n", len(suite.Results()), *csv)
	}
}
