package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunErrorPathFlushesProfile(t *testing.T) {
	// Error paths must return through run() — not os.Exit — so the deferred
	// profiling stop flushes -cpuprofile into a complete gzip-framed file.
	prof := filepath.Join(t.TempDir(), "cpu.pprof")
	code := run([]string{"-cpuprofile", prof, "-exp", "no-such-experiment"})
	if code != 2 {
		t.Fatalf("run returned %d, want 2", code)
	}
	data, err := os.ReadFile(prof)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("profile is not a gzip stream (%d bytes): deferred stop did not run", len(data))
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-no-such-flag"}); code != 2 {
		t.Fatalf("run returned %d, want 2", code)
	}
}
