// Package-level benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation. Each benchmark regenerates its artifact
// and prints the same rows/series the paper reports (run with -v to see the
// tables; b.N repetitions re-run the suite so the timing measures the whole
// regeneration).
//
// The default operating point keeps every benchmark in seconds, not
// minutes: a benchmark-subset for the heavy speedup grids, full Table II
// coverage for the cheap artifacts. cmd/paperbench regenerates everything
// over all 17 workloads.
package main

import (
	"context"
	"io"
	"os"
	"testing"

	"cameo/internal/experiments"
)

// benchSubset keeps the per-artifact grids tractable under `go test
// -bench=.`: two capacity-limited and three latency-limited workloads that
// span the paper's behaviours (thrashing mcf, streaming lbm, sparse milc,
// hot gcc, small sphinx3).
var benchSubset = []string{"mcf", "lbm", "milc", "gcc", "sphinx3"}

func benchOptions(full bool) experiments.Options {
	o := experiments.DefaultOptions()
	o.InstrPerCore = 200_000
	if !full {
		o.Benchmarks = benchSubset
	}
	return o
}

// runExperiment regenerates one artifact b.N times.
func runExperiment(b *testing.B, id string, full bool) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var out io.Writer = io.Discard
	if testing.Verbose() {
		out = os.Stdout
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh suite per iteration: the memoization cache must not let
		// later iterations measure a no-op.
		s := experiments.MustNewSuite(benchOptions(full))
		e.Run(s, out)
	}
}

// runSuiteAtJobs regenerates a representative experiment set with the
// given worker count — the parallel-orchestration benchmark behind the
// speedup numbers in EXPERIMENTS.md. Compare:
//
//	go test -bench 'SuiteJobs' -benchtime 1x
func runSuiteAtJobs(b *testing.B, jobs int) {
	b.Helper()
	// Resolve the experiment set before the timer: lookup failures and setup
	// belong to the harness, not the measured regeneration.
	ids := []string{"fig2", "fig9", "fig13", "table4"}
	exps := make([]experiments.Experiment, len(ids))
	for i, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		exps[i] = e
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := benchOptions(false)
		o.Jobs = jobs
		s := experiments.MustNewSuite(o)
		for _, e := range exps {
			if err := experiments.RunExperiment(context.Background(), s, e, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSuiteJobs1(b *testing.B) { runSuiteAtJobs(b, 1) }
func BenchmarkSuiteJobs4(b *testing.B) { runSuiteAtJobs(b, 4) }
func BenchmarkSuiteJobs8(b *testing.B) { runSuiteAtJobs(b, 8) }

func BenchmarkTable1Config(b *testing.B)    { runExperiment(b, "table1", true) }
func BenchmarkTable2Workloads(b *testing.B) { runExperiment(b, "table2", true) }
func BenchmarkFig2Motivation(b *testing.B)  { runExperiment(b, "fig2", false) }
func BenchmarkFig3Specs(b *testing.B)       { runExperiment(b, "fig3", true) }
func BenchmarkFig8LatencyModel(b *testing.B) {
	runExperiment(b, "fig8", true)
}
func BenchmarkFig9LLTDesigns(b *testing.B)  { runExperiment(b, "fig9", false) }
func BenchmarkFig12Prediction(b *testing.B) { runExperiment(b, "fig12", false) }
func BenchmarkTable3Accuracy(b *testing.B)  { runExperiment(b, "table3", false) }
func BenchmarkFig13Speedup(b *testing.B)    { runExperiment(b, "fig13", false) }
func BenchmarkTable4Bandwidth(b *testing.B) { runExperiment(b, "table4", false) }
func BenchmarkFig14PowerEDP(b *testing.B)   { runExperiment(b, "fig14", false) }
func BenchmarkFig15Placement(b *testing.B)  { runExperiment(b, "fig15", false) }

// Ablations beyond the paper (DESIGN.md §5, EXPERIMENTS.md extensions).
func BenchmarkExtHybridFilter(b *testing.B)     { runExperiment(b, "ext-hybrid", false) }
func BenchmarkExtMigrateThreshold(b *testing.B) { runExperiment(b, "ext-threshold", false) }
func BenchmarkExtStackedRatio(b *testing.B)     { runExperiment(b, "ext-ratio", false) }
func BenchmarkExtScale(b *testing.B)            { runExperiment(b, "ext-scale", false) }
func BenchmarkExtMixes(b *testing.B)            { runExperiment(b, "ext-mix", false) }
func BenchmarkExtController(b *testing.B)       { runExperiment(b, "ext-controller", false) }
func BenchmarkExtDRAMCache(b *testing.B)        { runExperiment(b, "ext-dramcache", false) }
func BenchmarkExtKnobs(b *testing.B)            { runExperiment(b, "ext-knobs", false) }
func BenchmarkExtLLTCache(b *testing.B)         { runExperiment(b, "ext-lltcache", false) }
