#!/usr/bin/env bash
# Interrupt-resume smoke test: a sweep killed mid-run and resumed with
# -resume must produce byte-identical CSV and telemetry to an
# uninterrupted sweep, and must leave no checkpoint manifest behind.
#
# Run from the repository root: ./scripts/resume-smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/cameo-sweep" ./cmd/cameo-sweep

args=(-org cameo -bench sphinx3,milc,gcc -sweep seed -values 1,2,3,4,5,6
  -instr 1000000 -cores 16 -jobs 2 -quiet)

# Reference: an uninterrupted run.
"$workdir/cameo-sweep" "${args[@]}" -cachedir "$workdir/cache-ref" \
  -out "$workdir/ref.csv" -telemetry "$workdir/ref-tel.json"

# Interrupted run: SIGINT mid-sweep. Exit 130 (interrupted) and exit 0
# (the sweep happened to finish before the signal landed) are both fine —
# the resume comparison below holds either way, so this test is not
# timing-fragile.
"$workdir/cameo-sweep" "${args[@]}" -cachedir "$workdir/cache" \
  -out "$workdir/int.csv" &
pid=$!
sleep 1.5
kill -INT "$pid" 2>/dev/null || true
wait "$pid" && status=0 || status=$?
echo "interrupted run exited with status $status"

# Resume: completed cells load from the cache, incomplete cells re-run.
"$workdir/cameo-sweep" "${args[@]}" -cachedir "$workdir/cache" -resume \
  -out "$workdir/res.csv" -telemetry "$workdir/res-tel.json"

cmp "$workdir/ref.csv" "$workdir/res.csv"
cmp "$workdir/ref-tel.json" "$workdir/res-tel.json"

# A clean finish removes the checkpoint manifest.
if [ -e "$workdir/cache/manifest.json" ]; then
  echo "manifest still present after clean resume" >&2
  exit 1
fi
echo "resume smoke test passed"
