#!/usr/bin/env bash
# Fleet smoke test: a coordinator sharding real sweeps across two cameod
# workers with cross-wired peer caches. Asserts that
#   (a) the fleet's merged report is byte-identical to a single-node run,
#   (b) SIGKILL-ing a worker mid-sweep re-shards its cells onto the
#       survivor and the sweep still completes byte-identically,
#   (c) a second fleet run of the same sweep recomputes nothing — the
#       workers' cells_executed counters do not move.
#
# Run from the repository root: ./scripts/fleet-smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
pids=()
trap 'rm -rf "$workdir"; for p in "${pids[@]}"; do kill "$p" 2>/dev/null || true; done' EXIT

go build -o "$workdir/cameod" ./cmd/cameod

ref_addr=127.0.0.1:18440
w1_addr=127.0.0.1:18441
w2_addr=127.0.0.1:18442
co_addr=127.0.0.1:18443

wait_healthy() { # url logfile
  for _ in $(seq 1 50); do
    curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "service at $1 did not become healthy"; cat "$2"; exit 1
}

metric() { # url name
  curl -fsS "$1/metrics" | python3 -c "
import json, sys
for s in json.load(sys.stdin):
    if s['name'] == '$2':
        print(s.get('value', 0)); break
else:
    print(0)"
}

sweep='{"org":"cameo","benchmarks":["sphinx3","milc","gcc"],"sweep":"seed","values":[1,2,3,4],"instr":200000,"cores":4}'

# --- Reference: one standalone worker answers the sweep. -------------------
"$workdir/cameod" -addr "$ref_addr" -cachedir "$workdir/ref-cache" -jobs 2 \
  2>"$workdir/ref.log" &
refpid=$!; pids+=("$refpid")
wait_healthy "http://$ref_addr" "$workdir/ref.log"
curl -fsS -X POST -d "$sweep" "http://$ref_addr/sweep" -o "$workdir/reference.json"
kill -TERM "$refpid"; wait "$refpid" || true

start_worker() { # addr cachedir peer logfile
  "$workdir/cameod" -addr "$1" -cachedir "$2" -peers "http://$3" -jobs 2 \
    -max-inflight 2 2>"$4" &
  pids+=("$!")
  wait_healthy "http://$1" "$4"
}

start_worker "$w1_addr" "$workdir/w1-cache" "$w2_addr" "$workdir/w1.log"
w1pid=${pids[-1]}
start_worker "$w2_addr" "$workdir/w2-cache" "$w1_addr" "$workdir/w2.log"

"$workdir/cameod" -addr "$co_addr" -coordinator \
  -workers "http://$w1_addr,http://$w2_addr" 2>"$workdir/co.log" &
pids+=("$!")
wait_healthy "http://$co_addr" "$workdir/co.log"

# --- (a) Fleet result is byte-identical to the single-node reference. ------
curl -fsS -X POST -d "$sweep" "http://$co_addr/sweep" -o "$workdir/fleet1.json"
cmp "$workdir/reference.json" "$workdir/fleet1.json" || {
  echo "fleet sweep differs from single-node reference"; exit 1; }

# --- (c) A repeat run recomputes nothing anywhere in the fleet. ------------
before=$(( $(metric "http://$w1_addr" server/cells_executed) \
         + $(metric "http://$w2_addr" server/cells_executed) ))
curl -fsS -X POST -d "$sweep" "http://$co_addr/sweep" -o "$workdir/fleet2.json"
cmp "$workdir/reference.json" "$workdir/fleet2.json"
after=$(( $(metric "http://$w1_addr" server/cells_executed) \
        + $(metric "http://$w2_addr" server/cells_executed) ))
if [ "$after" -ne "$before" ]; then
  echo "second fleet run recomputed $((after - before)) cells, want 0"; exit 1
fi

# --- (b) SIGKILL a worker mid-sweep; the survivor absorbs its cells. -------
# A bigger, uncached sweep so the kill lands while cells are in flight.
bigsweep='{"org":"cameo","benchmarks":["sphinx3","milc","gcc","mcf"],"sweep":"seed","values":[5,6,7,8],"instr":2000000,"cores":4}'
curl -fsS -X POST -d "$bigsweep" "http://$ref_addr/sweep" -o /dev/null 2>/dev/null || true
curl -sS -X POST -d "$bigsweep" "http://$co_addr/sweep" -o "$workdir/fleet3.json" &
curlpid=$!
sleep 0.4
kill -KILL "$w1pid" 2>/dev/null || true
wait "$curlpid"

# The sweep completed despite the kill. Verify against a fresh single-node
# reference of the same request.
"$workdir/cameod" -addr "$ref_addr" -cachedir "$workdir/ref2-cache" -jobs 2 \
  2>"$workdir/ref2.log" &
refpid=$!; pids+=("$refpid")
wait_healthy "http://$ref_addr" "$workdir/ref2.log"
curl -fsS -X POST -d "$bigsweep" "http://$ref_addr/sweep" -o "$workdir/reference3.json"
cmp "$workdir/reference3.json" "$workdir/fleet3.json" || {
  echo "post-kill fleet sweep differs from single-node reference"
  cat "$workdir/co.log"; exit 1; }

grep -q "re-sharding its cells" "$workdir/co.log" || {
  echo "coordinator log has no re-shard line"; cat "$workdir/co.log"; exit 1; }

echo "fleet smoke test passed"
