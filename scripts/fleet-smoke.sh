#!/usr/bin/env bash
# Fleet smoke test: a coordinator sharding real sweeps across two cameod
# workers with cross-wired peer caches. Asserts that
#   (a) the fleet's merged report is byte-identical to a single-node run,
#   (b) SIGKILL-ing a worker mid-sweep re-shards its cells onto the
#       survivor and the sweep still completes byte-identically,
#   (c) a second fleet run of the same sweep recomputes nothing — the
#       workers' cells_executed counters do not move.
#
# Run from the repository root: ./scripts/fleet-smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
pids=()
trap 'rm -rf "$workdir"; for p in "${pids[@]}"; do kill "$p" 2>/dev/null || true; done' EXIT

go build -o "$workdir/cameod" ./cmd/cameod

ref_addr=127.0.0.1:18440
w1_addr=127.0.0.1:18441
w2_addr=127.0.0.1:18442
co_addr=127.0.0.1:18443

wait_healthy() { # url logfile
  for _ in $(seq 1 50); do
    curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "service at $1 did not become healthy"; cat "$2"; exit 1
}

metric() { # url name
  curl -fsS "$1/metrics" | python3 -c "
import json, sys
for s in json.load(sys.stdin):
    if s['name'] == '$2':
        print(s.get('value', 0)); break
else:
    print(0)"
}

sweep='{"org":"cameo","benchmarks":["sphinx3","milc","gcc"],"sweep":"seed","values":[1,2,3,4],"instr":200000,"cores":4}'

# --- Reference: one standalone worker answers the sweep. -------------------
"$workdir/cameod" -addr "$ref_addr" -cachedir "$workdir/ref-cache" -jobs 2 \
  2>"$workdir/ref.log" &
refpid=$!; pids+=("$refpid")
wait_healthy "http://$ref_addr" "$workdir/ref.log"
curl -fsS -X POST -d "$sweep" "http://$ref_addr/sweep" -o "$workdir/reference.json"
kill -TERM "$refpid"; wait "$refpid" || true

start_worker() { # addr cachedir peer logfile
  "$workdir/cameod" -addr "$1" -cachedir "$2" -peers "http://$3" -jobs 2 \
    -max-inflight 2 2>"$4" &
  pids+=("$!")
  wait_healthy "http://$1" "$4"
}

start_worker "$w1_addr" "$workdir/w1-cache" "$w2_addr" "$workdir/w1.log"
w1pid=${pids[-1]}
start_worker "$w2_addr" "$workdir/w2-cache" "$w1_addr" "$workdir/w2.log"

"$workdir/cameod" -addr "$co_addr" -coordinator \
  -workers "http://$w1_addr,http://$w2_addr" 2>"$workdir/co.log" &
pids+=("$!")
wait_healthy "http://$co_addr" "$workdir/co.log"

# --- (a) Fleet result is byte-identical to the single-node reference. ------
curl -fsS -X POST -d "$sweep" "http://$co_addr/sweep" -o "$workdir/fleet1.json"
cmp "$workdir/reference.json" "$workdir/fleet1.json" || {
  echo "fleet sweep differs from single-node reference"; exit 1; }

# --- (c) A repeat run recomputes nothing anywhere in the fleet. ------------
before=$(( $(metric "http://$w1_addr" server/cells_executed) \
         + $(metric "http://$w2_addr" server/cells_executed) ))
curl -fsS -X POST -d "$sweep" "http://$co_addr/sweep" -o "$workdir/fleet2.json"
cmp "$workdir/reference.json" "$workdir/fleet2.json"
after=$(( $(metric "http://$w1_addr" server/cells_executed) \
        + $(metric "http://$w2_addr" server/cells_executed) ))
if [ "$after" -ne "$before" ]; then
  echo "second fleet run recomputed $((after - before)) cells, want 0"; exit 1
fi

# --- (b) SIGKILL a worker mid-sweep; the survivor absorbs its cells. -------
# A bigger, uncached sweep so the kill lands while cells are in flight.
bigsweep='{"org":"cameo","benchmarks":["sphinx3","milc","gcc","mcf"],"sweep":"seed","values":[5,6,7,8],"instr":2000000,"cores":4}'
curl -fsS -X POST -d "$bigsweep" "http://$ref_addr/sweep" -o /dev/null 2>/dev/null || true
curl -sS -X POST -d "$bigsweep" "http://$co_addr/sweep" -o "$workdir/fleet3.json" &
curlpid=$!
sleep 0.4
kill -KILL "$w1pid" 2>/dev/null || true
wait "$curlpid"

# The sweep completed despite the kill. Verify against a fresh single-node
# reference of the same request.
"$workdir/cameod" -addr "$ref_addr" -cachedir "$workdir/ref2-cache" -jobs 2 \
  2>"$workdir/ref2.log" &
refpid=$!; pids+=("$refpid")
wait_healthy "http://$ref_addr" "$workdir/ref2.log"
curl -fsS -X POST -d "$bigsweep" "http://$ref_addr/sweep" -o "$workdir/reference3.json"
cmp "$workdir/reference3.json" "$workdir/fleet3.json" || {
  echo "post-kill fleet sweep differs from single-node reference"
  cat "$workdir/co.log"; exit 1; }

grep -q "re-sharding its cells" "$workdir/co.log" || {
  echo "coordinator log has no re-shard line"; cat "$workdir/co.log"; exit 1; }

echo "fleet smoke test passed"

# === Membership drills: failure detector, runtime re-join, coordinator ====
# === resume, and a bounded heartbeat partition. ===========================
# Fresh fleet with the suspicion-based failure detector on, so deaths come
# from missed heartbeats rather than the legacy dispatch-failure path.
w3_addr=127.0.0.1:18444
w4_addr=127.0.0.1:18445
co2_addr=127.0.0.1:18446
co3_addr=127.0.0.1:18447

wait_metric_ge() { # url name floor
  for _ in $(seq 1 100); do
    v=$(metric "$1" "$2")
    [ "${v%.*}" -ge "$3" ] 2>/dev/null && return 0
    sleep 0.1
  done
  echo "metric $2 at $1 never reached $3 (last: $v)"; return 1
}

start_worker "$w3_addr" "$workdir/w3-cache" "$w4_addr" "$workdir/w3.log"
start_worker "$w4_addr" "$workdir/w4-cache" "$w3_addr" "$workdir/w4.log"
w4pid=${pids[-1]}

"$workdir/cameod" -addr "$co2_addr" -coordinator \
  -workers "http://$w3_addr,http://$w4_addr" -cachedir "$workdir/co2-manifest" \
  -heartbeat 100ms -suspect-misses 1 -dead-misses 3 2>"$workdir/co2.log" &
co2pid=$!; pids+=("$co2pid")
wait_healthy "http://$co2_addr" "$workdir/co2.log"

# --- (d) SIGKILL a worker mid-sweep; it re-joins at runtime. ---------------
d1sweep='{"org":"cameo","benchmarks":["sphinx3","milc","gcc","mcf"],"sweep":"seed","values":[11,12,13,14],"instr":2000000,"cores":4}'
curl -fsS -X POST -d "$d1sweep" "http://$ref_addr/sweep" -o "$workdir/reference-d1.json"
curl -sS -X POST -d "$d1sweep" "http://$co2_addr/sweep" -o "$workdir/fleet-d1.json" &
curlpid=$!
sleep 0.4
kill -KILL "$w4pid" 2>/dev/null || true
wait "$curlpid"
cmp "$workdir/reference-d1.json" "$workdir/fleet-d1.json" || {
  echo "sweep across a worker death differs from single-node reference"
  cat "$workdir/co2.log"; exit 1; }

# The failure detector walks the dead worker through suspect -> dead...
wait_metric_ge "http://$co2_addr" fleet/worker_deaths 1 || { cat "$workdir/co2.log"; exit 1; }
# ...and the restarted worker announces itself back with -join. (If a slow
# dead-probe lands first the coordinator revives it as a false death — the
# same fresh re-admission, logged differently; accept either.)
"$workdir/cameod" -addr "$w4_addr" -cachedir "$workdir/w4-cache" \
  -peers "http://$w3_addr" -jobs 2 -max-inflight 2 \
  -join "http://$co2_addr" -heartbeat 150ms 2>"$workdir/w4b.log" &
pids+=("$!")
wait_healthy "http://$w4_addr" "$workdir/w4b.log"
for _ in $(seq 1 50); do
  grep -qE "re-joined after death|returned from the dead" "$workdir/co2.log" && break
  sleep 0.1
done
grep -qE "re-joined after death|returned from the dead" "$workdir/co2.log" || {
  echo "coordinator log has no runtime re-admission line"; cat "$workdir/co2.log"; exit 1; }

# Already-cached cells are not recomputed on the re-joined fleet: a repeat
# of the same sweep moves no cells_executed counter anywhere.
before=$(( $(metric "http://$w3_addr" server/cells_executed) \
         + $(metric "http://$w4_addr" server/cells_executed) ))
curl -fsS -X POST -d "$d1sweep" "http://$co2_addr/sweep" -o "$workdir/fleet-d1b.json"
cmp "$workdir/reference-d1.json" "$workdir/fleet-d1b.json"
after=$(( $(metric "http://$w3_addr" server/cells_executed) \
        + $(metric "http://$w4_addr" server/cells_executed) ))
if [ "$after" -ne "$before" ]; then
  echo "re-joined fleet recomputed $((after - before)) already-cached cells, want 0"; exit 1
fi

# --- (e) SIGKILL the coordinator mid-sweep; -resume completes the sweep. ---
d2sweep='{"org":"cameo","benchmarks":["sphinx3","milc","gcc","mcf"],"sweep":"seed","values":[21,22,23,24],"instr":2000000,"cores":4}'
curl -fsS -X POST -d "$d2sweep" "http://$ref_addr/sweep" -o "$workdir/reference-d2.json"
curl -sS -X POST -d "$d2sweep" "http://$co2_addr/sweep" -o /dev/null &
curlpid=$!
sleep 0.4
kill -KILL "$co2pid" 2>/dev/null || true
wait "$curlpid" || true

"$workdir/cameod" -addr "$co2_addr" -coordinator \
  -workers "http://$w3_addr,http://$w4_addr" -cachedir "$workdir/co2-manifest" -resume \
  -heartbeat 100ms -suspect-misses 1 -dead-misses 3 2>"$workdir/co2b.log" &
pids+=("$!")
wait_healthy "http://$co2_addr" "$workdir/co2b.log"
curl -fsS -X POST -d "$d2sweep" "http://$co2_addr/sweep" -o "$workdir/fleet-d2.json"
cmp "$workdir/reference-d2.json" "$workdir/fleet-d2.json" || {
  echo "resumed coordinator sweep differs from single-node reference"
  cat "$workdir/co2b.log"; exit 1; }

# --- (f) Heartbeat partition shorter than the suspicion window. ------------
# Inject a deterministic partition that swallows the first 3 heartbeat
# probes to w3: long enough to turn it suspect, too short to kill it. The
# worker must return to alive with zero deaths, zero false deaths, and
# zero re-sharded cells.
"$workdir/cameod" -addr "$co3_addr" -coordinator \
  -workers "http://$w3_addr,http://$w4_addr" \
  -heartbeat 100ms -suspect-misses 2 -dead-misses 8 \
  -chaos "fleet/heartbeat:partition:match=$w3_addr:max=3" 2>"$workdir/co3.log" &
pids+=("$!")
wait_healthy "http://$co3_addr" "$workdir/co3.log"

wait_metric_ge "http://$co3_addr" fleet/suspects 1 || { cat "$workdir/co3.log"; exit 1; }
for _ in $(seq 1 100); do
  ready=$(curl -fsS "http://$co3_addr/readyz" | python3 -c "
import json, sys
r = json.load(sys.stdin)
print(1 if len(r.get('workers', [])) == 2 and not r.get('suspect') and not r.get('dead') else 0)")
  [ "$ready" = 1 ] && break
  sleep 0.1
done
[ "$ready" = 1 ] || { echo "partitioned worker never returned to alive"; cat "$workdir/co3.log"; exit 1; }

for m in fleet/worker_deaths fleet/false_deaths fleet/cells_resharded; do
  v=$(metric "http://$co3_addr" "$m")
  if [ "${v%.*}" -ne 0 ]; then
    echo "partition drill moved $m to $v, want 0"; cat "$workdir/co3.log"; exit 1
  fi
done

# The healed fleet still answers byte-identically (everything is cached).
curl -fsS -X POST -d "$d1sweep" "http://$co3_addr/sweep" -o "$workdir/fleet-d3.json"
cmp "$workdir/reference-d1.json" "$workdir/fleet-d3.json"

echo "fleet membership drills passed"

# === (g) Coordinator SIGKILL mid-sweep: a standby confirms the death, ======
# === claims the next epoch from the shared manifest, and finishes the ======
# === sweep byte-identically with zero recompute of cached cells. ===========
co4_addr=127.0.0.1:18448
sb_addr=127.0.0.1:18449

"$workdir/cameod" -addr "$co4_addr" -coordinator \
  -workers "http://$w3_addr,http://$w4_addr" -cachedir "$workdir/co4-manifest" \
  -heartbeat 100ms -suspect-misses 1 -dead-misses 3 -lease-ttl 1s \
  2>"$workdir/co4.log" &
co4pid=$!; pids+=("$co4pid")
wait_healthy "http://$co4_addr" "$workdir/co4.log"

"$workdir/cameod" -addr "$sb_addr" -standby "http://$co4_addr" \
  -workers "http://$w3_addr,http://$w4_addr" -cachedir "$workdir/co4-manifest" \
  -heartbeat 100ms -suspect-misses 1 -dead-misses 3 -lease-ttl 1s \
  2>"$workdir/sb.log" &
pids+=("$!")
wait_healthy "http://$sb_addr" "$workdir/sb.log"

# While the primary lives, the standby refuses sweeps instead of forking.
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST -d "$d2sweep" "http://$sb_addr/sweep")
[ "$code" = 503 ] || { echo "standby answered $code while the primary was alive, want 503"; exit 1; }

d4sweep='{"org":"cameo","benchmarks":["sphinx3","milc","gcc","mcf"],"sweep":"seed","values":[31,32,33,34],"instr":2000000,"cores":4}'
curl -fsS -X POST -d "$d4sweep" "http://$ref_addr/sweep" -o "$workdir/reference-d4.json"
curl -sS -X POST -d "$d4sweep" "http://$co4_addr/sweep" -o /dev/null &
curlpid=$!
sleep 0.4
kill -KILL "$co4pid" 2>/dev/null || true
wait "$curlpid" || true

for _ in $(seq 1 100); do
  grep -q "standby took over as coordinator epoch" "$workdir/sb.log" && break
  sleep 0.1
done
grep -q "standby took over as coordinator epoch" "$workdir/sb.log" || {
  echo "standby never took over after the coordinator SIGKILL"; cat "$workdir/sb.log"; exit 1; }

# The promoted standby completes the interrupted sweep byte-identically.
curl -fsS -X POST -d "$d4sweep" "http://$sb_addr/sweep" -o "$workdir/fleet-d4.json"
cmp "$workdir/reference-d4.json" "$workdir/fleet-d4.json" || {
  echo "post-takeover sweep differs from single-node reference"
  cat "$workdir/sb.log"; exit 1; }

# Zero recompute of cached cells: a repeat through the promoted coordinator
# moves no cells_executed counter anywhere in the fleet.
before=$(( $(metric "http://$w3_addr" server/cells_executed) \
         + $(metric "http://$w4_addr" server/cells_executed) ))
curl -fsS -X POST -d "$d4sweep" "http://$sb_addr/sweep" -o "$workdir/fleet-d4b.json"
cmp "$workdir/reference-d4.json" "$workdir/fleet-d4b.json"
after=$(( $(metric "http://$w3_addr" server/cells_executed) \
        + $(metric "http://$w4_addr" server/cells_executed) ))
if [ "$after" -ne "$before" ]; then
  echo "post-takeover repeat recomputed $((after - before)) cells, want 0"; exit 1
fi

echo "coordinator takeover drill passed"
