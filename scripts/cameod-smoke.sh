#!/usr/bin/env bash
# Graceful-shutdown smoke test for cameod: start the service, complete one
# sweep, SIGTERM it while another sweep is in flight, and assert that
# (a) the drain log lines appear, (b) the process exits 0, and (c) the
# result cache survives intact — a fresh cameod answers the first sweep
# from cache byte-identically.
#
# Run from the repository root: ./scripts/cameod-smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"; kill "$pid" 2>/dev/null || true' EXIT

go build -o "$workdir/cameod" ./cmd/cameod

addr=127.0.0.1:18347
url="http://$addr"

start_cameod() {
  "$workdir/cameod" -addr "$addr" -cachedir "$workdir/cache" -jobs 2 \
    -drain-grace 10s 2>"$1" &
  pid=$!
  for _ in $(seq 1 50); do
    curl -fsS "$url/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "cameod did not become healthy"; cat "$1"; exit 1
}

start_cameod "$workdir/log1.txt"

# readyz reports admission is open.
curl -fsS "$url/readyz" >/dev/null

# A quick sweep completes and lands in the cache.
quick='{"org":"cameo","benchmarks":["sphinx3"],"sweep":"seed","values":[1,2],"instr":50000,"cores":4}'
curl -fsS -X POST -d "$quick" "$url/sweep" -o "$workdir/sweep1.json"
grep -q '"benchmark": "sphinx3@seed=1"' "$workdir/sweep1.json"

# Start a long sweep, then SIGTERM mid-flight. The drain cancels it
# cooperatively (the engine's preemption points unwind the event loops),
# so the process still exits promptly and cleanly.
long='{"org":"cameo","benchmarks":["milc","gcc","mcf"],"sweep":"seed","values":[1,2,3,4],"instr":50000000,"cores":8}'
curl -sS -X POST -d "$long" "$url/sweep" -o "$workdir/sweep2.json" &
curlpid=$!
sleep 0.5
kill -TERM "$pid"
wait "$pid" && status=0 || status=$?
wait "$curlpid" || true

if [ "$status" -ne 0 ]; then
  echo "cameod exited $status after SIGTERM, want 0"; cat "$workdir/log1.txt"; exit 1
fi
grep -q "drain: stopping admission" "$workdir/log1.txt" || {
  echo "missing drain-start log line"; cat "$workdir/log1.txt"; exit 1; }
grep -q "drain: complete" "$workdir/log1.txt" || {
  echo "missing drain-complete log line"; cat "$workdir/log1.txt"; exit 1; }
grep -q "exiting after clean drain" "$workdir/log1.txt" || {
  echo "missing clean-exit log line"; cat "$workdir/log1.txt"; exit 1; }

# The cache survived the drain: a fresh cameod serves the quick sweep from
# disk, byte-identical to the first answer.
start_cameod "$workdir/log2.txt"
curl -fsS -X POST -d "$quick" "$url/sweep" -o "$workdir/sweep1-replay.json"
cmp "$workdir/sweep1.json" "$workdir/sweep1-replay.json"
kill -TERM "$pid"
wait "$pid"

echo "cameod graceful-shutdown smoke test passed"
