#!/usr/bin/env bash
# Shard-determinism smoke: drive the group-sharded execution mode end to end
# through both front ends and hold it to its two contracts.
#
#  1. paperbench: one fig13 cell at -shards 1, 2 and 4 — report, raw CSV and
#     telemetry must be byte-identical at every worker count.
#  2. cameo-sweep: a small grid (including a non-lane-multiple group count)
#     at -shards 1 vs 4 — CSV and telemetry byte-identical.
#  3. Speedup gate: a controller-heavy mcf cell must run >= 1.5x faster at
#     -shards 4 than at -shards 1. Wall-clock speedup needs real cores, so
#     this part only runs when the machine has >= 4; the byte-identity
#     checks above carry the correctness contract everywhere.
#
# Run from the repository root.
set -euo pipefail

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/paperbench" ./cmd/paperbench
go build -o "$workdir/cameo-sweep" ./cmd/cameo-sweep

echo "== paperbench byte-identity across -shards 1/2/4"
run_pb() {
  # The report echoes the -csv/-telemetry paths ("wrote ... to ..."), which
  # necessarily differ per run; everything else must match byte for byte.
  "$workdir/paperbench" -exp fig13 -bench sphinx3,milc -scale 4096 \
    -instr 40000 -cores 4 -jobs 2 -shards "$1" -quiet \
    -csv "$workdir/pb-k$1.csv" -telemetry "$workdir/pb-k$1.json" |
    grep -v '^wrote ' > "$workdir/pb-k$1.txt"
}
for k in 1 2 4; do run_pb "$k"; done
for k in 2 4; do
  cmp "$workdir/pb-k1.txt" "$workdir/pb-k$k.txt"
  cmp "$workdir/pb-k1.csv" "$workdir/pb-k$k.csv"
  cmp "$workdir/pb-k1.json" "$workdir/pb-k$k.json"
done
echo "   report, CSV and telemetry byte-identical"

echo "== cameo-sweep byte-identity across -shards 1/4"
run_sweep() {
  "$workdir/cameo-sweep" -org cameo -bench milc,gcc -sweep scale \
    -values 4096,8192 -instr 30000 -cores 2 -jobs 4 -shards "$1" -quiet \
    -out "$workdir/sw-k$1.csv" -telemetry "$workdir/sw-k$1.json"
}
run_sweep 1
run_sweep 4
cmp "$workdir/sw-k1.csv" "$workdir/sw-k4.csv"
cmp "$workdir/sw-k1.json" "$workdir/sw-k4.json"
echo "   CSV and telemetry byte-identical"

echo "== speedup gate (-shards 4 vs -shards 1, controller-heavy cell)"
cores=$(nproc)
if [ "$cores" -lt 4 ]; then
  echo "   skipped: wall-clock gate needs >= 4 cores, this machine has $cores"
  exit 0
fi
time_cell() {
  # Best-of-2 wall nanoseconds for one FR-FCFS mcf cell at -shards $1.
  # -jobs 1 pins cell-level parallelism so only lane workers move the clock.
  local best=0 s e dt
  for _ in 1 2; do
    s=$(date +%s%N)
    "$workdir/cameo-sweep" -org cameo -bench mcf -sweep frfcfs -values 1 \
      -instr 2000000 -cores 8 -jobs 1 -shards "$1" -quiet -out /dev/null
    e=$(date +%s%N)
    dt=$((e - s))
    if [ "$best" -eq 0 ] || [ "$dt" -lt "$best" ]; then best=$dt; fi
  done
  echo "$best"
}
t1=$(time_cell 1)
t4=$(time_cell 4)
awk -v a="$t1" -v b="$t4" \
  'BEGIN { printf "   -shards 1: %.0fms   -shards 4: %.0fms   speedup %.2fx\n", a/1e6, b/1e6, a/b }'
# speedup >= 1.5  <=>  2*t1 >= 3*t4, in integer arithmetic.
if [ $((2 * t1)) -lt $((3 * t4)) ]; then
  echo "shard-smoke: -shards 4 is not >= 1.5x faster than -shards 1" >&2
  exit 1
fi
echo "   speedup >= 1.5x"
