#!/usr/bin/env bash
# Golden per-organization sweep: run a small fixed sweep for one registered
# memory organization and byte-compare the CSV against the checked-in
# results/golden/<org>.csv. The CI org-matrix fans this out one job per
# organization, so any change to an organization's timing, traffic, or CSV
# shape shows up as a golden diff on exactly that organization's job.
#
# Usage:
#   ./scripts/org-golden.sh <org>            # compare against the golden file
#   ./scripts/org-golden.sh <org> --update   # regenerate the golden file
#   ./scripts/org-golden.sh --update-all     # regenerate every golden file
#
# Run from the repository root.
set -euo pipefail

golden_dir=results/golden
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/cameo-sweep" ./cmd/cameo-sweep

# Small fixed grid: 2 benchmarks x 2 scales, tiny instruction budget. The
# scale sweep pins the footprint, so every organization finishes in seconds.
# -jobs 4 is safe because per-cell results are deterministic at any worker
# count (the conformance suite holds every organization to that).
run_sweep() {
  "$workdir/cameo-sweep" -org "$1" -bench milc,gcc -sweep scale \
    -values 4096,8192 -instr 30000 -cores 2 -jobs 4 -quiet -out "$2"
}

orgs_from_binary() {
  # The -org flag's usage text embeds the registry's name list:
  #   "organization to sweep (one of: a, b, c)"
  "$workdir/cameo-sweep" -h 2>&1 |
    sed -n 's/.*one of: \([^)]*\)).*/\1/p' | tr -d ',' | tr ' ' '\n' | sed '/^$/d'
}

update_one() {
  mkdir -p "$golden_dir"
  run_sweep "$1" "$golden_dir/$1.csv"
  echo "updated $golden_dir/$1.csv"
}

case "${1:-}" in
--update-all)
  while IFS= read -r org; do
    update_one "$org"
  done < <(orgs_from_binary)
  ;;
"")
  echo "usage: $0 <org> [--update] | $0 --update-all" >&2
  exit 2
  ;;
*)
  org=$1
  if [ "${2:-}" = "--update" ]; then
    update_one "$org"
    exit 0
  fi
  golden=$golden_dir/$org.csv
  if [ ! -f "$golden" ]; then
    echo "no golden file $golden — run: $0 $org --update" >&2
    exit 1
  fi
  run_sweep "$org" "$workdir/got.csv"
  if ! cmp "$golden" "$workdir/got.csv"; then
    echo "golden sweep for '$org' diverged from $golden" >&2
    diff -u "$golden" "$workdir/got.csv" | head -40 >&2 || true
    exit 1
  fi
  echo "golden sweep for '$org' matches $golden"
  ;;
esac
